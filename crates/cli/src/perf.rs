//! `netsample perf` — record, inspect, and diff performance reports.
//!
//! * `perf record` runs a fixed-seed synthetic workload (the paper's
//!   five sampling methods × {packet-size, interarrival} targets ×
//!   intervals {10, 50, 100}, over an SDSC-profile trace truncated to
//!   `--packets` packets), writes the instrumented run as the next
//!   `BENCH_<n>.json` in `--dir`, and diffs it against the newest prior
//!   report there. Each of the 30 cells is timed and gated separately
//!   (`cell/<family>/<target>/k<k>`), plus four end-to-end streaming
//!   cells (`stream/<target>/k50`) covering decode → window → sample →
//!   score through `streamkit`, plus six flow-inversion cells
//!   (`cell/flows/<estimator>/k<k>`) covering sample → aggregate →
//!   invert → score through the flow-statistics suite.
//! * `perf report` pretty-prints one report (a named file, or the
//!   newest in `--dir`).
//! * `perf diff` compares two report files.
//!
//! `record` and `diff` **gate**: any metric moving more than the
//! threshold (default 25%) in the bad direction makes the command exit
//! with code 1, unless `PERF_ALLOW_REGRESSION=1` is set — that
//! downgrades the gate to a report, for intentional trade-offs.

use crate::args::Args;
use crate::commands::CmdError;
use netsynth::TraceProfile;
use nettrace::Trace;
use sampling::experiment::{Experiment, MethodFamily};
use sampling::{FlowEstimator, FlowExperiment, MethodSpec, Target};
use std::path::{Path, PathBuf};
use std::time::Instant;
use streamkit::{run_stream, StreamConfig, StreamMethod, WindowSpec};

const PERF_USAGE: &str = "usage:
  netsample perf record [--dir D] [--packets N] [--seed S] [--replications R]
                        [--threshold PCT] [--jobs N]
  netsample perf report [BENCH_n.json] [--dir D]
  netsample perf diff <old.json> <new.json> [--threshold PCT]

record/diff exit 1 when a metric regresses past the threshold
(default 25%); PERF_ALLOW_REGRESSION=1 reports instead of failing.
record defaults to --jobs 1 so new reports stay comparable with the
serial baselines already on disk.
";

/// Dispatch `netsample perf <sub> ...`.
pub fn perf(rest: &[String]) -> Result<String, CmdError> {
    match rest.split_first() {
        None => Err(CmdError::usage(format!(
            "missing perf subcommand\n\n{PERF_USAGE}"
        ))),
        Some((sub, rest)) => match sub.as_str() {
            "record" => record(&Args::parse(
                rest.to_vec(),
                &[
                    "dir",
                    "packets",
                    "seed",
                    "replications",
                    "threshold",
                    "jobs",
                ],
            )?),
            "report" => report(&Args::parse(rest.to_vec(), &["dir"])?),
            "diff" => diff_cmd(&Args::parse(rest.to_vec(), &["threshold"])?),
            other => Err(CmdError::usage(format!(
                "unknown perf subcommand '{other}'\n\n{PERF_USAGE}"
            ))),
        },
    }
}

fn threshold_of(args: &Args) -> Result<f64, CmdError> {
    let pct: f64 = args.opt_num("threshold", perfkit::DEFAULT_THRESHOLD * 100.0)?;
    if !pct.is_finite() || pct <= 0.0 {
        return Err(CmdError::usage("--threshold must be a positive percent"));
    }
    Ok(pct / 100.0)
}

fn regression_allowed() -> bool {
    std::env::var("PERF_ALLOW_REGRESSION").is_ok_and(|v| v == "1")
}

/// Diff `new` against the newest report older than it in `dir`,
/// appending the table to `out`. Returns the gate verdict.
fn diff_against_baseline(
    dir: &Path,
    new: &perfkit::BenchReport,
    threshold: f64,
    out: &mut String,
) -> Result<bool, CmdError> {
    let Some((base_path, _)) = perfkit::baseline_before(dir, new.bench_version) else {
        out.push_str("no prior BENCH_*.json baseline; nothing to diff against\n");
        return Ok(false);
    };
    let old = perfkit::BenchReport::load(&base_path).map_err(CmdError::data)?;
    let d = perfkit::diff(&old, new, threshold);
    out.push('\n');
    out.push_str(&d.render());
    Ok(d.has_regressions())
}

fn gate(regressed: bool, out: String) -> Result<String, CmdError> {
    if regressed && !regression_allowed() {
        Err(CmdError::regression(format!(
            "{out}\nperformance regression gate failed (set PERF_ALLOW_REGRESSION=1 to allow)"
        )))
    } else {
        Ok(out)
    }
}

/// How many times `record` repeats the whole method sweep. The
/// reported wall time per cell is the **minimum** across passes — the
/// lower envelope is the standard noise-robust estimator for CPU-bound
/// work (preemption only ever adds time), which is what lets the diff
/// gate at 25% without flapping on a shared machine.
const RECORD_PASSES: usize = 3;

/// Distribution targets the recorded workload scores: packet size and
/// interarrival time, the two the paper leans on hardest (Figures 5–9).
const RECORD_TARGETS: [Target; 2] = [Target::PacketSize, Target::Interarrival];

/// Sampling granularities per cell, bracketing the paper's T3 operating
/// point of 1-in-50.
const RECORD_INTERVALS: [usize; 3] = [10, 50, 100];

/// `netsample perf record [--dir D] [--packets N] [--seed S]`
fn record(args: &Args) -> Result<String, CmdError> {
    let dir = PathBuf::from(args.opt_or("dir", "."));
    let packets: usize = args.opt_num("packets", 100_000)?;
    let seed: u64 = args.opt_num("seed", 1993)?;
    let replications: u32 = args.opt_num("replications", 20)?;
    // Default 1, NOT the session pool width: the gate diffs against the
    // newest prior report, and the baselines on disk are serial. A
    // wider pool is an explicit, recorded choice (`run.jobs` lands in
    // the report so like is still diffed with like).
    let jobs: usize = args.opt_num("jobs", 1)?;
    let threshold = threshold_of(args)?;
    if packets == 0 {
        return Err(CmdError::usage("--packets must be positive"));
    }
    if replications == 0 {
        return Err(CmdError::usage("--replications must be positive"));
    }
    if jobs == 0 {
        return Err(CmdError::usage("--jobs must be positive"));
    }
    std::fs::create_dir_all(&dir)
        .map_err(|e| CmdError::io(format!("cannot create {}: {e}", dir.display())))?;

    // A deterministic workload: SDSC-profile synthetic trace truncated
    // to the requested packet count, scored with the paper's five
    // methods. Everything below runs under one root span so the report
    // carries a meaningful tree.
    let profile = TraceProfile::sdsc_1993();
    let secs = (packets as f64 / profile.mean_pps * 1.1).ceil() as u32 + 5;
    let (trace, experiments) = {
        let _root = obskit::span("perf_record");
        let trace = {
            let _s = obskit::span("perf_synth");
            let full = netsynth::generate(
                &TraceProfile {
                    duration_secs: secs,
                    ..profile
                },
                seed,
            );
            let keep = packets.min(full.len());
            Trace::new(full.packets()[..keep].to_vec())
                .map_err(|e| CmdError::data(format!("synthetic trace: {e}")))?
        };
        let mean_pps = trace.stats().mean_pps();
        let pool = parkit::Pool::new(jobs);
        let families = MethodFamily::paper_five();
        // The workload covers both distribution targets the paper
        // scores most heavily and three granularities spanning the T3
        // operating point (k = 50) — size and interarrival histograms
        // stress different parts of the pipeline, and cost scales with
        // 1/k, so a regression in any of them is visible on its own row.
        let cells: Vec<(MethodFamily, Target, usize)> = families
            .iter()
            .flat_map(|&family| {
                RECORD_TARGETS.iter().flat_map(move |&target| {
                    RECORD_INTERVALS.iter().map(move |&k| (family, target, k))
                })
            })
            .collect();
        let exp_size = Experiment::new(trace.packets(), RECORD_TARGETS[0]);
        let exp_ia = Experiment::new(trace.packets(), RECORD_TARGETS[1]);
        let mut best_us = vec![u64::MAX; cells.len()];
        for _pass in 0..RECORD_PASSES {
            for (i, &(family, target, k)) in cells.iter().enumerate() {
                let exp = if target == RECORD_TARGETS[0] {
                    &exp_size
                } else {
                    &exp_ia
                };
                let spec = family.at_granularity(k, mean_pps);
                let started = Instant::now();
                let _result = exp.run_with(&pool, spec, replications, seed);
                best_us[i] = best_us[i].min(started.elapsed().as_micros() as u64);
            }
        }
        let mut experiments: Vec<perfkit::ExperimentTime> = cells
            .iter()
            .zip(best_us)
            .map(|(&(family, target, k), wall_us)| perfkit::ExperimentTime {
                name: format!("cell/{}/{target}/k{k}", family.name()),
                wall_us,
            })
            .collect();

        // The streaming path, end to end: decode the pcap bytes, window,
        // sample, score — one cell per characterization target at the
        // paper's k = 50 operating point, 10k-packet tumbling windows.
        // A regression in chunked ingestion, the windower, or the staged
        // pipeline shows up here even when the batch cells are clean.
        let capture = {
            let _s = obskit::span("perf_stream_encode");
            let mut buf = Vec::new();
            nettrace::pcap::write_pcap(&mut buf, &trace)
                .map_err(|e| CmdError::data(format!("encoding workload capture: {e}")))?;
            buf
        };
        let stream_targets = [
            Target::PacketSize,
            Target::Interarrival,
            Target::Protocol,
            Target::Port,
        ];
        let mut stream_best = vec![u64::MAX; stream_targets.len()];
        for _pass in 0..RECORD_PASSES {
            for (i, &target) in stream_targets.iter().enumerate() {
                let mut cfg = StreamConfig::new(
                    StreamMethod::Spec(MethodSpec::Systematic { interval: 50 }),
                    target,
                    WindowSpec::Count(10_000),
                );
                cfg.seed = seed;
                cfg.jobs = jobs;
                let started = Instant::now();
                let _summary = run_stream(capture.as_slice(), &cfg)
                    .map_err(|e| CmdError::data(format!("stream workload: {e}")))?;
                stream_best[i] = stream_best[i].min(started.elapsed().as_micros() as u64);
            }
        }
        experiments.extend(
            stream_targets
                .iter()
                .zip(stream_best)
                .map(|(&target, wall_us)| perfkit::ExperimentTime {
                    name: format!("stream/{target}/k50"),
                    wall_us,
                }),
        );

        // The flow-inversion path: sample a flow-structured pack,
        // aggregate the sample back into flows, invert the parent size
        // distribution, score with φ — one gated cell per estimator at
        // a dense (k = 10) and a sparse (k = 100) operating point. EM
        // dominates this family's cost; the naive/tail cells isolate
        // the shared sample-aggregate-score substrate.
        let flow_pack = {
            let _s = obskit::span("perf_flow_pack");
            netsynth::generate_flow_pack(
                &netsynth::FlowPackConfig {
                    flows: (packets / 50).clamp(100, 2_000) as u32,
                    duration_secs: 30,
                    ..netsynth::FlowPackConfig::default()
                },
                seed,
            )
        };
        let flow_exp = FlowExperiment::new(flow_pack.packets());
        let flow_cells: Vec<(FlowEstimator, u64)> = FlowEstimator::all()
            .iter()
            .flat_map(|&est| [10u64, 100].into_iter().map(move |k| (est, k)))
            .collect();
        let mut flow_best = vec![u64::MAX; flow_cells.len()];
        for _pass in 0..RECORD_PASSES {
            for (i, &(est, k)) in flow_cells.iter().enumerate() {
                let started = Instant::now();
                let _result = flow_exp.run_with(&pool, est, k, replications);
                flow_best[i] = flow_best[i].min(started.elapsed().as_micros() as u64);
            }
        }
        experiments.extend(
            flow_cells
                .iter()
                .zip(flow_best)
                .map(|(&(est, k), wall_us)| perfkit::ExperimentTime {
                    name: format!("cell/flows/{}/k{k}", est.name()),
                    wall_us,
                }),
        );
        (trace, experiments)
    };

    let ts_us = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    let mut bench = perfkit::BenchReport::collect(
        perfkit::RunMeta {
            ts_us,
            source: "perf-record".to_string(),
            seed,
            packets: trace.len() as u64,
            jobs: jobs as u64,
        },
        experiments,
    );
    let path = bench.write_next(&dir).map_err(CmdError::io)?;

    let mut out = format!("wrote {}\n\n{}", path.display(), bench.render_summary());
    let regressed = diff_against_baseline(&dir, &bench, threshold, &mut out)?;
    gate(regressed, out)
}

/// `netsample perf report [file] [--dir D]`
fn report(args: &Args) -> Result<String, CmdError> {
    let path = match args.opt("dir") {
        Some(dir) if args.positional_count() > 0 => {
            return Err(CmdError::usage(format!(
                "give either a file or --dir {dir}, not both"
            )))
        }
        Some(dir) => {
            let dir = Path::new(dir);
            perfkit::latest_in(dir)
                .map(|(p, _)| p)
                .ok_or_else(|| CmdError::data(format!("no BENCH_*.json in {}", dir.display())))?
        }
        None => match args.positional_count() {
            0 => perfkit::latest_in(Path::new("."))
                .map(|(p, _)| p)
                .ok_or_else(|| CmdError::data("no BENCH_*.json in the current directory"))?,
            _ => PathBuf::from(args.positional(0, "bench.json")?),
        },
    };
    let bench = perfkit::BenchReport::load(&path).map_err(CmdError::data)?;
    Ok(format!("{}\n{}", path.display(), bench.render_summary()))
}

/// `netsample perf diff <old.json> <new.json> [--threshold PCT]`
fn diff_cmd(args: &Args) -> Result<String, CmdError> {
    let old_path = args.positional(0, "old.json")?;
    let new_path = args.positional(1, "new.json")?;
    let threshold = threshold_of(args)?;
    let old = perfkit::BenchReport::load(Path::new(old_path)).map_err(CmdError::data)?;
    let new = perfkit::BenchReport::load(Path::new(new_path)).map_err(CmdError::data)?;
    let d = perfkit::diff(&old, &new, threshold);
    gate(d.has_regressions(), d.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("netsample_perf_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn run(rest: &[&str]) -> Result<String, CmdError> {
        perf(&rest.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn missing_subcommand_is_usage_error() {
        let e = run(&[]).unwrap_err();
        assert_eq!(e.exit_code(), 64);
        assert!(e.to_string().contains("perf record"));
    }

    #[test]
    fn record_then_report_round_trips() {
        let dir = tmpdir("roundtrip");
        let dir_s = dir.to_str().unwrap();
        // Tiny workload: the unit test only checks plumbing.
        let out = run(&[
            "record",
            "--dir",
            dir_s,
            "--packets",
            "2000",
            "--seed",
            "7",
            "--jobs",
            "2",
        ])
        .unwrap();
        assert!(out.contains("BENCH_1.json"), "{out}");
        assert!(out.contains("2 jobs"), "{out}");
        assert!(out.contains("cell/systematic/packet-size/k50"), "{out}");
        assert!(out.contains("cell/strat-timer/interarrival/k100"), "{out}");
        assert!(out.contains("stream/packet-size/k50"), "{out}");
        assert!(out.contains("stream/port/k50"), "{out}");
        assert!(out.contains("cell/flows/naive/k10"), "{out}");
        assert!(out.contains("cell/flows/em/k100"), "{out}");
        assert!(out.contains("no prior BENCH_*.json baseline"), "{out}");
        let report = run(&["report", "--dir", dir_s]).unwrap();
        assert!(report.contains("BENCH_1"), "{report}");
        assert!(report.contains("experiments"), "{report}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn diff_gates_on_injected_regression() {
        let dir = tmpdir("gate");
        // A fabricated baseline that is much faster than any real run —
        // diffing real vs. fake must trip the gate.
        let fast = r#"{
  "schema_version": 1, "bench_version": 1,
  "run": {"ts_us": 1, "source": "test", "seed": 7, "packets": 2000},
  "experiments": [{"name": "cell/systematic", "wall_us": 200000}],
  "samplers": [], "timings": [], "benches": [], "spans": []
}"#;
        let slow = fast
            .replace("200000", "900000")
            .replace("\"bench_version\": 1", "\"bench_version\": 2");
        let old = dir.join("BENCH_1.json");
        let new = dir.join("BENCH_2.json");
        std::fs::write(&old, fast).unwrap();
        std::fs::write(&new, slow).unwrap();
        let e = run(&["diff", old.to_str().unwrap(), new.to_str().unwrap()]).unwrap_err();
        assert_eq!(e.exit_code(), 1, "{e}");
        assert!(e.to_string().contains("REGRESSED"), "{e}");
        assert!(e.to_string().contains("PERF_ALLOW_REGRESSION"), "{e}");
        // Reverse direction is an improvement, not a regression.
        let ok = run(&["diff", new.to_str().unwrap(), old.to_str().unwrap()]).unwrap();
        assert!(ok.contains("no regressions"), "{ok}");
        // A custom threshold far above the injected 350% slowdown passes.
        let ok = run(&[
            "diff",
            old.to_str().unwrap(),
            new.to_str().unwrap(),
            "--threshold",
            "1000",
        ])
        .unwrap();
        assert!(ok.contains("no regressions"), "{ok}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_threshold_is_usage_error() {
        let e = run(&["diff", "a", "b", "--threshold", "-5"]).unwrap_err();
        assert_eq!(e.exit_code(), 64);
        let e = run(&["record", "--packets", "0"]).unwrap_err();
        assert_eq!(e.exit_code(), 64);
    }
}
