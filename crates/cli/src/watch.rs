//! `netsample watch` — poll a running server's `/series` and `/alerts`
//! endpoints and render ASCII sparklines plus alert state in the
//! terminal, with an optional CI gate (`--fail-on RULE`).
//!
//! The client is a std-only HTTP/1.0 `TcpStream` — the same dependency
//! budget as the server it scrapes. Each poll issues one `GET /series`
//! (JSON) and one `GET /alerts` (JSONL); the loop runs `--for N` polls
//! spaced `--interval-ms` apart and then reports:
//!
//! * exit 0 — the watched rule (if any) existed and never fired;
//! * exit 1 — `--fail-on RULE` fired during the watch (regression);
//! * exit 65 — `--fail-on RULE` never appeared in `/alerts` (the gate
//!   would have silently passed on a typo otherwise).

use crate::args::Args;
use crate::commands::CmdError;
use perfkit::json::Json;
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Density ramp for sparkline cells, lowest to highest.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Sparkline width: the newest points that fit one terminal line.
const SPARK_WIDTH: usize = 40;

/// One `GET` over a fresh HTTP/1.0 connection; returns (status, body).
fn http_get(addr: &str, path: &str) -> Result<(u16, String), CmdError> {
    let mut stream = TcpStream::connect(addr)
        .map_err(|e| CmdError::io(format!("cannot connect to {addr}: {e}")))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| CmdError::io(format!("cannot set timeout: {e}")))?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.0\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| CmdError::io(format!("cannot send request to {addr}: {e}")))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| CmdError::io(format!("cannot read response from {addr}: {e}")))?;
    let text = String::from_utf8_lossy(&raw);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| CmdError::data(format!("malformed HTTP response from {addr}")))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| CmdError::data(format!("malformed status line from {addr}")))?;
    Ok((status, body.to_string()))
}

/// Render `values` as a fixed-ramp sparkline of the newest
/// [`SPARK_WIDTH`] points, min–max normalized per series.
fn sparkline(values: &[f64]) -> String {
    let tail: Vec<f64> = values
        .iter()
        .rev()
        .take(SPARK_WIDTH)
        .rev()
        .copied()
        .filter(|v| v.is_finite())
        .collect();
    if tail.is_empty() {
        return String::new();
    }
    let min = tail.iter().copied().fold(f64::INFINITY, f64::min);
    let max = tail.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    tail.iter()
        .map(|v| {
            let idx = if span > 0.0 {
                (((v - min) / span) * (RAMP.len() - 1) as f64).round() as usize
            } else {
                RAMP.len() / 2
            };
            RAMP[idx.min(RAMP.len() - 1)] as char
        })
        .collect()
}

/// One parsed series from the `/series` document.
struct SeriesLine {
    key: String,
    values: Vec<f64>,
    last: Option<f64>,
}

/// Parse the `/series` JSON body into per-key value vectors.
fn parse_series_body(body: &str) -> Result<Vec<SeriesLine>, CmdError> {
    let doc = Json::parse(body).map_err(|e| CmdError::data(format!("bad /series JSON: {e}")))?;
    let series = doc
        .get("series")
        .and_then(Json::as_arr)
        .ok_or_else(|| CmdError::data("/series JSON missing 'series' array"))?;
    let mut out = Vec::with_capacity(series.len());
    for entry in series {
        let key = entry
            .get("key")
            .and_then(Json::as_str)
            .ok_or_else(|| CmdError::data("/series entry missing 'key'"))?
            .to_string();
        let mut values = Vec::new();
        if let Some(points) = entry.get("points").and_then(Json::as_arr) {
            for p in points {
                // Each point is [ts_us, value]; a null value (non-finite
                // on the server) is skipped, not plotted as zero.
                if let Some(pair) = p.as_arr() {
                    if let Some(v) = pair.get(1).and_then(Json::as_f64) {
                        values.push(v);
                    }
                }
            }
        }
        let last = values.last().copied();
        out.push(SeriesLine { key, values, last });
    }
    Ok(out)
}

/// One parsed alert row from the `/alerts` JSONL body.
struct AlertLine {
    rule: String,
    firing: bool,
    value: Option<f64>,
    flaps: u64,
}

/// Parse the `/alerts` JSONL body (one alert object per line).
fn parse_alerts_body(body: &str) -> Result<Vec<AlertLine>, CmdError> {
    let mut out = Vec::new();
    for line in body.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let doc =
            Json::parse(line).map_err(|e| CmdError::data(format!("bad /alerts line: {e}")))?;
        let rule = doc
            .get("rule")
            .and_then(Json::as_str)
            .ok_or_else(|| CmdError::data("/alerts line missing 'rule'"))?
            .to_string();
        let state = doc.get("state").and_then(Json::as_str).unwrap_or("ok");
        out.push(AlertLine {
            rule,
            firing: state == "firing",
            value: doc.get("value").and_then(Json::as_f64),
            flaps: doc.get("flaps").and_then(Json::as_u64).unwrap_or(0),
        });
    }
    Ok(out)
}

/// `netsample watch <addr> [--for N] [--interval-ms MS] [--step K]
/// [--series CSV] [--fail-on RULE]` — see the module docs for the exit
/// contract.
pub fn watch(args: &Args) -> Result<String, CmdError> {
    let addr = args.positional(0, "addr")?.to_string();
    if args.positional_count() != 1 {
        return Err(CmdError::usage("watch takes exactly one <addr> argument"));
    }
    let polls: u64 = args.opt_num("for", 10u64)?;
    if polls == 0 {
        return Err(CmdError::usage("--for must be at least 1"));
    }
    let interval_ms: u64 = args.opt_num("interval-ms", 500u64)?;
    let step: usize = args.opt_num("step", 1usize)?;
    if step == 0 {
        return Err(CmdError::usage("--step must be at least 1"));
    }
    let fail_on = args.opt("fail-on").map(str::to_string);
    let filters: Vec<String> = args
        .opt("series")
        .map(|csv| {
            csv.split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default();

    let series_path = format!("/series?step={step}");
    let mut fail_rule_seen = false;
    let mut fail_rule_fired = false;
    let mut out = String::new();
    for poll in 0..polls {
        if poll > 0 {
            std::thread::sleep(Duration::from_millis(interval_ms));
        }
        let (status, body) = http_get(&addr, &series_path)?;
        if status != 200 {
            return Err(CmdError::data(format!(
                "/series returned {status}: {}",
                body.trim()
            )));
        }
        let mut lines = parse_series_body(&body)?;
        if !filters.is_empty() {
            lines.retain(|l| filters.iter().any(|f| l.key.contains(f.as_str())));
        }
        let (status, body) = http_get(&addr, "/alerts")?;
        if status != 200 {
            return Err(CmdError::data(format!(
                "/alerts returned {status}: {}",
                body.trim()
            )));
        }
        let alerts = parse_alerts_body(&body)?;

        let mut frame = format!("poll {}/{polls} {addr}\n", poll + 1);
        for l in &lines {
            let last = match l.last {
                Some(v) => format!("{v:.1}"),
                None => "-".to_string(),
            };
            let _ = writeln!(
                &mut frame,
                "  {:<44} {:>12} |{}|",
                l.key,
                last,
                sparkline(&l.values)
            );
        }
        if alerts.is_empty() {
            frame.push_str("  alerts: (no rules installed)\n");
        }
        for a in &alerts {
            let value = match a.value {
                Some(v) => format!("{v:.1}"),
                None => "null".to_string(),
            };
            let _ = writeln!(
                &mut frame,
                "  alert {:<20} {} value={} flaps={}",
                a.rule,
                if a.firing { "FIRING" } else { "ok" },
                value,
                a.flaps
            );
            if let Some(rule) = &fail_on {
                if &a.rule == rule {
                    fail_rule_seen = true;
                    if a.firing {
                        fail_rule_fired = true;
                    }
                }
            }
        }
        // Stream each frame immediately: watch is a live view, not a
        // report — the caller should see state while the loop runs.
        print!("{frame}");
        let _ = std::io::stdout().flush();
    }

    if let Some(rule) = &fail_on {
        if fail_rule_fired {
            return Err(CmdError::regression(format!(
                "rule '{rule}' fired during the watch"
            )));
        }
        if !fail_rule_seen {
            return Err(CmdError::data(format!(
                "rule '{rule}' never appeared in /alerts (typo, or rules not installed?)"
            )));
        }
        let _ = writeln!(&mut out, "watch: rule '{rule}' ok across {polls} poll(s)");
    } else {
        let _ = writeln!(&mut out, "watch: {polls} poll(s) complete");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_normalizes_and_handles_edge_shapes() {
        assert_eq!(sparkline(&[]), "");
        // Flat series: every cell is the mid-ramp character.
        let flat = sparkline(&[5.0, 5.0, 5.0]);
        assert_eq!(flat.len(), 3);
        assert!(flat.chars().all(|c| c == RAMP[RAMP.len() / 2] as char));
        // Monotone ramp: first cell lowest, last cell highest.
        let ramp = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert!(ramp.starts_with(' '));
        assert!(ramp.ends_with('@'));
        // Non-finite points are dropped, not plotted.
        let holes = sparkline(&[1.0, f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!(holes.len(), 2);
    }

    #[test]
    fn sparkline_keeps_only_the_newest_window() {
        let vals: Vec<f64> = (0..100).map(f64::from).collect();
        let s = sparkline(&vals);
        assert_eq!(s.len(), SPARK_WIDTH);
        // The tail is still a rising ramp ending at the maximum.
        assert!(s.ends_with('@'));
    }

    #[test]
    fn series_body_parses_keys_points_and_nulls() {
        let body = r#"{"now_us":10,"interval_us":200000,"step":1,"series":[
            {"key":"proc_rss_kb","points":[[1,10],[2,null],[3,12.5]]},
            {"key":"empty","points":[]}]}"#;
        let lines = parse_series_body(body).unwrap();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].key, "proc_rss_kb");
        assert_eq!(lines[0].values, vec![10.0, 12.5]);
        assert_eq!(lines[0].last, Some(12.5));
        assert!(lines[1].values.is_empty());
        assert!(parse_series_body("{\"series\":3}").is_err());
        assert!(parse_series_body("not json").is_err());
    }

    #[test]
    fn alerts_body_parses_states_and_rejects_garbage() {
        let body = concat!(
            "{\"rule\":\"rss\",\"state\":\"firing\",\"expr\":\"e\",\"for_ticks\":1,",
            "\"value\":42.0,\"since_us\":7,\"flaps\":3}\n",
            "{\"rule\":\"quiet\",\"state\":\"ok\",\"expr\":\"e\",\"for_ticks\":1,",
            "\"value\":null,\"since_us\":null,\"flaps\":0}\n"
        );
        let alerts = parse_alerts_body(body).unwrap();
        assert_eq!(alerts.len(), 2);
        assert!(alerts[0].firing);
        assert_eq!(alerts[0].value, Some(42.0));
        assert_eq!(alerts[0].flaps, 3);
        assert!(!alerts[1].firing);
        assert_eq!(alerts[1].value, None);
        assert!(parse_alerts_body("{}\n").is_err());
        assert!(parse_alerts_body("nope\n").is_err());
        assert!(parse_alerts_body("").unwrap().is_empty());
    }

    #[test]
    fn watch_rejects_bad_usage_before_connecting() {
        let args = |raw: &[&str]| {
            Args::parse(
                raw.iter().map(|s| s.to_string()),
                &["for", "interval-ms", "fail-on", "series", "step"],
            )
            .unwrap()
        };
        let e = watch(&args(&[])).unwrap_err();
        assert!(e.to_string().contains("<addr>"));
        let e = watch(&args(&["a:1", "b:2"])).unwrap_err();
        assert!(e.to_string().contains("exactly one"));
        let e = watch(&args(&["127.0.0.1:1", "--for", "0"])).unwrap_err();
        assert!(e.to_string().contains("--for"));
        let e = watch(&args(&["127.0.0.1:1", "--step", "0"])).unwrap_err();
        assert!(e.to_string().contains("--step"));
    }

    #[test]
    fn watch_fails_with_io_error_when_nothing_listens() {
        // Port 1 on localhost is essentially never bound; the connect
        // must surface as an I/O error (74), not a panic or a hang.
        let args = Args::parse(
            [
                "127.0.0.1:1".to_string(),
                "--for".to_string(),
                "1".to_string(),
            ],
            &["for", "interval-ms", "fail-on", "series", "step"],
        )
        .unwrap();
        let e = watch(&args).unwrap_err();
        assert_eq!(e.exit_code(), 74);
    }
}
