//! A small, dependency-free argument parser.
//!
//! Supports `--flag value`, `--flag=value`, and positional arguments;
//! collects unknown flags as errors. Deliberately minimal — the CLI's
//! option space is small and the workspace keeps its dependency budget.

use std::collections::HashMap;

/// Parsed arguments: positionals in order, `--key value` options, and
/// bare `--flag` booleans.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Args {
    positionals: Vec<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// A parse or validation error, rendered to the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse raw arguments (without the program/subcommand names).
    ///
    /// `known` lists the accepted option names (without `--`); anything
    /// else errors immediately so typos fail loudly.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I, known: &[&str]) -> Result<Args, ArgError> {
        Args::parse_with_flags(raw, known, &[])
    }

    /// Like [`Args::parse`], but also accepts the bare boolean flags in
    /// `known_flags` (given as `--flag`, no value).
    pub fn parse_with_flags<I: IntoIterator<Item = String>>(
        raw: I,
        known: &[&str],
        known_flags: &[&str],
    ) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut iter = raw.into_iter();
        while let Some(a) = iter.next() {
            if let Some(flag) = a.strip_prefix("--") {
                let (key, inline) = match flag.split_once('=') {
                    Some((k, v)) => (k.to_string(), Some(v.to_string())),
                    None => (flag.to_string(), None),
                };
                if known_flags.contains(&key.as_str()) {
                    if inline.is_some() {
                        return Err(ArgError(format!("--{key} does not take a value")));
                    }
                    if args.flags.contains(&key) {
                        return Err(ArgError(format!("--{key} given twice")));
                    }
                    args.flags.push(key);
                    continue;
                }
                if !known.contains(&key.as_str()) {
                    return Err(ArgError(format!("unknown option --{key}")));
                }
                let value = match inline {
                    Some(v) => v,
                    None => iter
                        .next()
                        .ok_or_else(|| ArgError(format!("--{key} needs a value")))?,
                };
                if args.options.insert(key.clone(), value).is_some() {
                    return Err(ArgError(format!("--{key} given twice")));
                }
            } else {
                args.positionals.push(a);
            }
        }
        Ok(args)
    }

    /// Whether the bare boolean flag `key` was given.
    #[must_use]
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Positional argument at `idx`, or an error naming it.
    pub fn positional(&self, idx: usize, name: &str) -> Result<&str, ArgError> {
        self.positionals
            .get(idx)
            .map(String::as_str)
            .ok_or_else(|| ArgError(format!("missing <{name}> argument")))
    }

    /// Number of positional arguments.
    #[must_use]
    pub fn positional_count(&self) -> usize {
        self.positionals.len()
    }

    /// Optional string option.
    #[must_use]
    pub fn opt(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// String option with a default.
    #[must_use]
    pub fn opt_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.opt(key).unwrap_or(default)
    }

    /// Parsed numeric option with a default.
    pub fn opt_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.opt(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key}: cannot parse '{v}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[&str], known: &[&str]) -> Result<Args, ArgError> {
        Args::parse(raw.iter().map(|s| s.to_string()), known)
    }

    #[test]
    fn positionals_and_options_mix() {
        let a = parse(
            &["in.pcap", "--seed", "7", "out.pcap", "--method=systematic"],
            &["seed", "method"],
        )
        .unwrap();
        assert_eq!(a.positional(0, "input").unwrap(), "in.pcap");
        assert_eq!(a.positional(1, "output").unwrap(), "out.pcap");
        assert_eq!(a.positional_count(), 2);
        assert_eq!(a.opt("seed"), Some("7"));
        assert_eq!(a.opt("method"), Some("systematic"));
    }

    #[test]
    fn unknown_option_is_rejected() {
        let e = parse(&["--sed", "7"], &["seed"]).unwrap_err();
        assert!(e.0.contains("unknown option --sed"));
    }

    #[test]
    fn missing_value_is_rejected() {
        let e = parse(&["--seed"], &["seed"]).unwrap_err();
        assert!(e.0.contains("needs a value"));
    }

    #[test]
    fn duplicate_option_is_rejected() {
        let e = parse(&["--seed", "1", "--seed", "2"], &["seed"]).unwrap_err();
        assert!(e.0.contains("given twice"));
    }

    #[test]
    fn numeric_options_parse_with_defaults() {
        let a = parse(&["--interval", "50"], &["interval", "seed"]).unwrap();
        assert_eq!(a.opt_num("interval", 1usize).unwrap(), 50);
        assert_eq!(a.opt_num("seed", 1993u64).unwrap(), 1993);
        let bad = parse(&["--interval", "x"], &["interval"]).unwrap();
        assert!(bad.opt_num("interval", 1usize).is_err());
    }

    #[test]
    fn missing_positional_names_itself() {
        let a = parse(&[], &[]).unwrap();
        let e = a.positional(0, "input").unwrap_err();
        assert!(e.0.contains("<input>"));
    }

    #[test]
    fn boolean_flags_parse_without_values() {
        let a = Args::parse_with_flags(
            ["x.pcap".to_string(), "--lossy".to_string()],
            &[],
            &["lossy"],
        )
        .unwrap();
        assert!(a.has_flag("lossy"));
        assert_eq!(a.positional(0, "input").unwrap(), "x.pcap");
        let a = Args::parse_with_flags(["x.pcap".to_string()], &[], &["lossy"]).unwrap();
        assert!(!a.has_flag("lossy"));
        // A flag must not swallow the next argument as a value.
        let a = Args::parse_with_flags(
            ["--lossy".to_string(), "x.pcap".to_string()],
            &[],
            &["lossy"],
        )
        .unwrap();
        assert!(a.has_flag("lossy"));
        assert_eq!(a.positional_count(), 1);
    }

    #[test]
    fn boolean_flag_rejects_value_and_duplicates() {
        let e = Args::parse_with_flags(["--lossy=yes".to_string()], &[], &["lossy"]).unwrap_err();
        assert!(e.0.contains("does not take a value"));
        let e = Args::parse_with_flags(
            ["--lossy".to_string(), "--lossy".to_string()],
            &[],
            &["lossy"],
        )
        .unwrap_err();
        assert!(e.0.contains("given twice"));
        let e = Args::parse_with_flags(["--lossy".to_string()], &[], &[]).unwrap_err();
        assert!(e.0.contains("unknown option"));
    }

    #[test]
    fn opt_or_defaults() {
        let a = parse(&[], &["target"]).unwrap();
        assert_eq!(a.opt_or("target", "packet-size"), "packet-size");
    }
}
