//! The five subcommands, as pure functions from parsed options to
//! rendered output (I/O limited to the named pcap files), so they are
//! directly testable.

use crate::args::{ArgError, Args};
use netsynth::flows::{generate_flows, FlowProfile};
use netsynth::TraceProfile;
use nettrace::pcap::write_pcap;
use nettrace::pcapng::read_capture;
use nettrace::{Micros, PerSecondSeries, Trace, TraceError};
use sampling::experiment::{Experiment, MethodFamily};
use sampling::{disparity, select_indices, FlowEstimator, FlowExperiment, MethodSpec, Target};
use statkit::SummaryRow;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write as _};
use streamkit::{run_stream, Backpressure, StreamConfig, StreamError, StreamMethod, WindowSpec};

/// A classified command failure. The class picks the process exit code,
/// following the `sysexits.h` conventions, so scripts can distinguish
/// "you called me wrong" from "your file is bad" from "the OS failed".
#[derive(Debug)]
pub enum CmdError {
    /// Bad invocation: unknown command/option/value (`EX_USAGE`, 64).
    Usage(String),
    /// Input was readable but its content is unusable: malformed pcap,
    /// empty trace, unscorable sample (`EX_DATAERR`, 65).
    Data(String),
    /// The operating system failed an open/read/write (`EX_IOERR`, 74).
    Io(String),
    /// A quality gate failed: a perf diff crossed the regression gate,
    /// or the fuzzer surfaced a contract violation (exit 1, the
    /// conventional "check failed" code CI systems key on). For perf,
    /// `PERF_ALLOW_REGRESSION=1` downgrades the gate to a report.
    Regression(String),
}

impl CmdError {
    /// Construct a usage-class error.
    pub fn usage(msg: impl Into<String>) -> CmdError {
        CmdError::Usage(msg.into())
    }

    /// Construct a data-class error.
    pub fn data(msg: impl Into<String>) -> CmdError {
        CmdError::Data(msg.into())
    }

    /// Construct an I/O-class error.
    pub fn io(msg: impl Into<String>) -> CmdError {
        CmdError::Io(msg.into())
    }

    /// Construct a regression-gate error.
    pub fn regression(msg: impl Into<String>) -> CmdError {
        CmdError::Regression(msg.into())
    }

    /// The sysexits-style process exit code for this class.
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        match self {
            CmdError::Regression(_) => 1,
            CmdError::Usage(_) => 64,
            CmdError::Data(_) => 65,
            CmdError::Io(_) => 74,
        }
    }
}

impl std::fmt::Display for CmdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CmdError::Usage(m) | CmdError::Data(m) | CmdError::Io(m) | CmdError::Regression(m) => {
                write!(f, "{m}")
            }
        }
    }
}

impl std::error::Error for CmdError {}

impl From<ArgError> for CmdError {
    fn from(e: ArgError) -> CmdError {
        CmdError::Usage(e.0)
    }
}

impl From<TraceError> for CmdError {
    fn from(e: TraceError) -> CmdError {
        match e {
            TraceError::Io(_) => CmdError::Io(e.to_string()),
            _ => CmdError::Data(e.to_string()),
        }
    }
}

impl From<StreamError> for CmdError {
    fn from(e: StreamError) -> CmdError {
        match &e {
            // Bad geometry or a degenerate method: the caller's flags.
            StreamError::Config(_) | StreamError::Build(_) => CmdError::Usage(e.to_string()),
            // The OS failed the read mid-stream.
            StreamError::Ingest {
                error: TraceError::Io(_),
                ..
            } => CmdError::Io(e.to_string()),
            // The capture itself is broken; the message carries the
            // byte offset of the broken structure, like `analyze
            // --lossy` reports it.
            StreamError::Ingest { .. } => CmdError::Data(e.to_string()),
        }
    }
}

impl From<std::fmt::Error> for CmdError {
    // Formatting into a String cannot fail in practice; classified as I/O
    // to keep `writeln!(out, ...)` usable with `?`.
    fn from(e: std::fmt::Error) -> CmdError {
        CmdError::Io(e.to_string())
    }
}

/// Reject stray positional arguments (typo'd flags usually land here).
pub(crate) fn expect_positionals(args: &Args, n: usize) -> Result<(), ArgError> {
    if args.positional_count() > n {
        return Err(ArgError(format!(
            "unexpected extra argument (expected {n} positional argument{})",
            if n == 1 { "" } else { "s" }
        )));
    }
    Ok(())
}

fn load(path: &str) -> Result<Trace, CmdError> {
    let f = File::open(path).map_err(|e| CmdError::io(format!("cannot open {path}: {e}")))?;
    Ok(read_capture(BufReader::new(f))?)
}

fn store(path: &str, trace: &Trace) -> Result<(), CmdError> {
    let f = File::create(path).map_err(|e| CmdError::io(format!("cannot create {path}: {e}")))?;
    write_pcap(BufWriter::new(f), trace)?;
    Ok(())
}

pub(crate) fn parse_target(name: &str) -> Result<Target, ArgError> {
    match name {
        "packet-size" | "size" => Ok(Target::PacketSize),
        "interarrival" | "ia" => Ok(Target::Interarrival),
        "protocol" => Ok(Target::Protocol),
        "port" => Ok(Target::Port),
        other => Err(ArgError(format!(
            "unknown target '{other}' (packet-size|interarrival|protocol|port)"
        ))),
    }
}

fn parse_method(args: &Args) -> Result<MethodSpec, CmdError> {
    let k: usize = args.opt_num("interval", 50)?;
    if k == 0 {
        return Err(CmdError::usage(
            "--interval must be at least 1 (a 1-in-0 selection is undefined)",
        ));
    }
    let spec = match args.opt_or("method", "systematic") {
        "systematic" => MethodSpec::Systematic { interval: k },
        "stratified" => MethodSpec::StratifiedRandom { bucket: k },
        "random" => MethodSpec::SimpleRandom {
            fraction: 1.0 / k as f64,
        },
        "geometric" => MethodSpec::GeometricSkip { mean_interval: k },
        "sys-timer" | "strat-timer" => {
            return Err(CmdError::usage(
                "timer methods need a rate; use `sweep` which derives it",
            ))
        }
        other => return Err(CmdError::usage(format!("unknown method '{other}'"))),
    };
    Ok(spec)
}

/// `netsample synth --profile sdsc|fixwest|flows --seconds N --seed S <out.pcap>`
pub fn synth(args: &Args) -> Result<String, CmdError> {
    expect_positionals(args, 1)?;
    let out = args.positional(0, "out.pcap")?;
    let seconds: u32 = args.opt_num("seconds", 60)?;
    let seed: u64 = args.opt_num("seed", 1993)?;
    let trace = match args.opt_or("profile", "sdsc") {
        "sdsc" => netsynth::generate(
            &TraceProfile {
                duration_secs: seconds,
                ..TraceProfile::sdsc_1993()
            },
            seed,
        ),
        "fixwest" => netsynth::generate(
            &TraceProfile {
                duration_secs: seconds,
                ..TraceProfile::fixwest_1993()
            },
            seed,
        ),
        "flows" => generate_flows(
            &FlowProfile {
                duration_secs: seconds,
                ..FlowProfile::default()
            },
            seed,
        ),
        // Flow-id-carrying pack with Zipf parent flow sizes: the input
        // the `flows` inversion subcommand is built for.
        "zipf" => netsynth::generate_flow_pack(
            &netsynth::FlowPackConfig {
                duration_secs: seconds,
                ..netsynth::FlowPackConfig::default()
            },
            seed,
        ),
        other => {
            return Err(CmdError::usage(format!(
                "unknown profile '{other}' (sdsc|fixwest|flows|zipf)"
            )))
        }
    };
    store(out, &trace)?;
    Ok(format!(
        "wrote {} packets ({} bytes of traffic, {:.0} s) to {}\n",
        trace.len(),
        trace.total_bytes(),
        trace.duration().as_secs_f64(),
        out
    ))
}

/// `netsample analyze <trace.pcap> [--lossy]` — Table 2/3-style
/// summaries. With `--lossy`, a truncated or damaged capture is not
/// fatal: the longest valid prefix is salvaged and analyzed, and the
/// report leads with what was (and was not) recovered.
pub fn analyze(args: &Args) -> Result<String, CmdError> {
    expect_positionals(args, 1)?;
    let path = args.positional(0, "trace.pcap")?;
    let mut out = String::new();
    let trace = if args.has_flag("lossy") {
        let f = File::open(path).map_err(|e| CmdError::io(format!("cannot open {path}: {e}")))?;
        let report = nettrace::read_capture_lossy(BufReader::new(f))?;
        writeln!(
            out,
            "lossy ingest ({}): {} of {} bytes parsed, {} packet{} salvaged",
            report.format,
            report.bytes_consumed,
            report.bytes_total,
            report.packets_salvaged,
            if report.packets_salvaged == 1 {
                ""
            } else {
                "s"
            },
        )?;
        for (i, fault) in report.faults.iter().enumerate() {
            if i == 0 {
                writeln!(out, "first fault at byte {}: {}", fault.offset, fault.error)?;
            } else {
                writeln!(out, "      fault at byte {}: {}", fault.offset, fault.error)?;
            }
        }
        writeln!(out)?;
        report.trace
    } else {
        load(path)?
    };
    if trace.is_empty() {
        return Err(CmdError::data(if args.has_flag("lossy") {
            "no packets could be salvaged"
        } else {
            "trace is empty"
        }));
    }
    let stats = trace.stats();
    writeln!(
        out,
        "{} packets, {} bytes, {:.1} s, mean {:.1} pps / {:.1} B per packet",
        stats.packets,
        stats.bytes,
        stats.duration.as_secs_f64(),
        stats.mean_pps(),
        stats.mean_size()
    )?;
    writeln!(out, "\n{}", SummaryRow::header())?;
    let sizes: Vec<f64> = trace.sizes().iter().map(|&s| f64::from(s)).collect();
    writeln!(out, "packet size (B)\n{}", SummaryRow::from_data(&sizes))?;
    if trace.len() > 1 {
        let ia: Vec<f64> = trace.interarrivals().iter().map(|&x| x as f64).collect();
        writeln!(out, "interarrival (us)\n{}", SummaryRow::from_data(&ia))?;
    }
    let series = PerSecondSeries::from_trace(&trace);
    if series.len() > 1 {
        writeln!(
            out,
            "packets/s\n{}",
            SummaryRow::from_data(&series.packet_rates())
        )?;
    }
    for target in [Target::Protocol, Target::Port] {
        let h = target.population_histogram(trace.packets());
        writeln!(out, "\n{target} distribution:")?;
        for (label, (count, prop)) in target
            .labels()
            .iter()
            .zip(h.counts().iter().zip(h.proportions()))
        {
            writeln!(out, "  {label:<12} {count:>10} ({:>5.1}%)", prop * 100.0)?;
        }
    }
    Ok(out)
}

/// `netsample sample <in.pcap> <out.pcap> --method M --interval k --seed s`
pub fn sample(args: &Args) -> Result<String, CmdError> {
    expect_positionals(args, 2)?;
    let input = args.positional(0, "in.pcap")?;
    let output = args.positional(1, "out.pcap")?;
    let seed: u64 = args.opt_num("seed", 1993)?;
    let trace = load(input)?;
    // Guard before the percentage math below: `trace.len() == 0` would
    // print a NaN selection rate. Same message and exit (65) as `flows`.
    if trace.is_empty() {
        return Err(CmdError::data("trace is empty"));
    }
    let spec = parse_method(args)?;
    // parse_method already rejects the reachable degenerate flags, but
    // any residual BuildError is still the caller's configuration.
    let mut sampler = spec
        .try_build(trace.len(), trace.start().unwrap_or(Micros::ZERO), 0, seed)
        .map_err(|e| CmdError::usage(e.to_string()))?;
    let selected = select_indices(sampler.as_mut(), trace.packets());
    let sampled: Vec<nettrace::PacketRecord> =
        selected.iter().map(|&i| trace.packets()[i]).collect();
    let out_trace = Trace::new(sampled)?;
    store(output, &out_trace)?;
    Ok(format!(
        "{spec}: selected {} of {} packets ({:.3}%) -> {}\n",
        out_trace.len(),
        trace.len(),
        out_trace.len() as f64 / trace.len() as f64 * 100.0,
        output
    ))
}

/// `netsample score <population.pcap> --method M --interval k --target T`
/// Samples the population internally and reports the full disparity
/// suite (φ et al.).
pub fn score(args: &Args) -> Result<String, CmdError> {
    expect_positionals(args, 1)?;
    let trace = load(args.positional(0, "population.pcap")?)?;
    if trace.is_empty() {
        return Err(CmdError::data("population trace is empty"));
    }
    let target = parse_target(args.opt_or("target", "packet-size"))?;
    let seed: u64 = args.opt_num("seed", 1993)?;
    let reps: u32 = args.opt_num("replications", 5)?;
    let spec = parse_method(args)?;
    let exp = Experiment::new(trace.packets(), target);
    let result = exp.run(spec, reps, seed);
    let mut out = String::new();
    writeln!(
        out,
        "{spec} on {target}, {} replications ({} empty):",
        result.replications.len(),
        result.empty_samples
    )?;
    for r in &result.replications {
        writeln!(
            out,
            "  rep {:<3} n={:<8} phi={:.5} chi2={:<10.2} sig={:.4} cost={:.0}",
            r.replication,
            r.report.sample_size,
            r.report.phi,
            r.report.chi2,
            r.report.significance,
            r.report.cost
        )?;
    }
    if let Some(mean) = result.mean_phi() {
        writeln!(out, "mean phi = {mean:.5}")?;
    }
    Ok(out)
}

/// `netsample compare <a.pcap> <b.pcap> --target T` — φ between two
/// traces' binned distributions (B scored against A as reference).
pub fn compare(args: &Args) -> Result<String, CmdError> {
    expect_positionals(args, 2)?;
    let a = load(args.positional(0, "a.pcap")?)?;
    let b = load(args.positional(1, "b.pcap")?)?;
    let target = parse_target(args.opt_or("target", "packet-size"))?;
    let pop = target.population_histogram(a.packets());
    let all: Vec<usize> = (0..b.len()).collect();
    let hist = target.sample_histogram(b.packets(), &all);
    match disparity(&pop, &hist) {
        Some(r) => Ok(format!(
            "{target}: phi={:.5} chi2={:.2} significance={:.4} X2={:.5}\n",
            r.phi, r.chi2, r.significance, r.x2
        )),
        None => Err(CmdError::data(
            "second trace produced no observations for this target",
        )),
    }
}

/// `netsample sweep <trace.pcap> --target T --replications R` —
/// Figure 8/9-style table over methods × granularities.
pub fn sweep(args: &Args) -> Result<String, CmdError> {
    expect_positionals(args, 1)?;
    let trace = load(args.positional(0, "trace.pcap")?)?;
    if trace.is_empty() {
        return Err(CmdError::data("trace is empty"));
    }
    let target = parse_target(args.opt_or("target", "packet-size"))?;
    let reps: u32 = args.opt_num("replications", 5)?;
    let seed: u64 = args.opt_num("seed", 1993)?;
    let max_k: usize = args.opt_num("max-interval", 4096)?;
    let exp = Experiment::new(trace.packets(), target);
    let mut out = String::new();
    write!(out, "{:>8}", "1/k")?;
    for f in MethodFamily::paper_five() {
        write!(out, " {:>12}", f.name())?;
    }
    writeln!(out)?;
    // The whole methods × granularities table runs as one flattened
    // grid on the session pool (`--jobs`), row-major in print order.
    let mut ks = Vec::new();
    let mut k = 2usize;
    while k <= max_k {
        ks.push(k);
        k *= 4;
    }
    let cells: Vec<(MethodFamily, usize)> = ks
        .iter()
        .flat_map(|&k| MethodFamily::paper_five().into_iter().map(move |f| (f, k)))
        .collect();
    let mut results = exp
        .run_grid_with(&parkit::Pool::with_default_jobs(), &cells, reps, seed)
        .into_iter();
    for k in ks {
        write!(out, "{k:>8}")?;
        for _ in MethodFamily::paper_five() {
            let result = results.next().expect("grid covers the full table");
            match result.mean_phi() {
                Some(phi) => write!(out, " {phi:>12.5}")?,
                None => write!(out, " {:>12}", "empty")?,
            }
        }
        writeln!(out)?;
    }
    Ok(out)
}

/// One flow-inversion replication as a JSONL record (hand-rendered like
/// [`jsonl_record`]; deterministic — the CI stage byte-diffs two runs).
fn flows_jsonl_record(estimator: FlowEstimator, k: u64, r: &sampling::FlowReplication) -> String {
    format!(
        "{{\"estimator\":\"{}\",\"k\":{},\"replication\":{},\"sampled_packets\":{},\
         \"sampled_flows\":{},\"estimated_flows\":{},\"syn_estimate\":{},\"phi\":{}}}",
        estimator.name(),
        k,
        r.replication,
        r.sampled_packets,
        r.sampled_flows,
        r.estimated_flows,
        r.syn_estimate,
        r.report.phi
    )
}

/// `netsample flows <trace.pcap> [--method systematic] [--interval k]
/// [--replications R] [--jsonl out.jsonl]` — recover the parent
/// flow-size distribution from a 1-in-k sampled packet stream and score
/// every inversion estimator (naive / tail-rescale / EM, plus the
/// SYN-based flow count) with φ against the trace's true flow table.
/// Only deterministic systematic sampling is supported: the inversion
/// model is calibrated for exact 1-in-k thinning, and replication `r`
/// is the systematic offset `r mod k`.
pub fn flows(args: &Args) -> Result<String, CmdError> {
    expect_positionals(args, 1)?;
    let trace = load(args.positional(0, "trace.pcap")?)?;
    if trace.is_empty() {
        return Err(CmdError::data("trace is empty"));
    }
    match args.opt_or("method", "systematic") {
        "systematic" => {}
        other => {
            return Err(CmdError::usage(format!(
                "flow inversion supports only deterministic 1-in-k sampling \
                 (--method systematic), got '{other}'"
            )))
        }
    }
    let k: u64 = args.opt_num("interval", 50)?;
    if k == 0 {
        return Err(CmdError::usage(
            "--interval must be at least 1 (a 1-in-0 selection is undefined)",
        ));
    }
    let reps: u32 = args.opt_num("replications", 5)?;
    if reps == 0 {
        return Err(CmdError::usage("--replications must be at least 1"));
    }
    let exp = FlowExperiment::new(trace.packets());
    let cells: Vec<(FlowEstimator, u64)> =
        FlowEstimator::all().into_iter().map(|e| (e, k)).collect();
    let results = exp.run_grid_with(&parkit::Pool::with_default_jobs(), &cells, reps);

    if let Some(jsonl) = args.opt("jsonl") {
        let f =
            File::create(jsonl).map_err(|e| CmdError::io(format!("cannot create {jsonl}: {e}")))?;
        let mut sink = BufWriter::new(f);
        for res in &results {
            for r in &res.replications {
                writeln!(sink, "{}", flows_jsonl_record(res.estimator, res.k, r))
                    .map_err(|e| CmdError::io(format!("cannot write {jsonl}: {e}")))?;
            }
        }
        sink.flush()
            .map_err(|e| CmdError::io(format!("cannot write {jsonl}: {e}")))?;
    }

    let mut out = String::new();
    writeln!(
        out,
        "flow inversion: 1-in-{k} systematic, {} true flows (mean size {:.1} packets), {reps} replication(s)",
        exp.true_flows(),
        exp.true_mean_size()
    )?;
    writeln!(
        out,
        "{:>6} {:>10} {:>12} {:>12} {:>10}",
        "est", "mean phi", "est flows", "syn flows", "unscored"
    )?;
    let mut any_scored = false;
    for res in &results {
        any_scored |= !res.replications.is_empty();
        let fmt = |v: Option<f64>, prec: usize| match v {
            Some(v) => format!("{v:.prec$}"),
            None => "-".to_string(),
        };
        writeln!(
            out,
            "{:>6} {:>10} {:>12} {:>12} {:>10}",
            res.estimator.name(),
            fmt(res.mean_phi(), 5),
            fmt(res.mean_estimated_flows(), 1),
            fmt(res.mean_syn_estimate(), 1),
            res.unscored
        )?;
    }
    if !any_scored {
        return Err(CmdError::data(
            "no replication produced a scorable estimate (sample too sparse for this interval?)",
        ));
    }
    Ok(out)
}

/// Method selection for the streaming engine. Mirrors [`parse_method`]
/// plus the stream-only reservoir; `random` additionally needs
/// `--population` (the engine rejects it otherwise, pointing at the
/// reservoir as the hint-free alternative).
pub(crate) fn parse_stream_method(args: &Args) -> Result<StreamMethod, CmdError> {
    let k: usize = args.opt_num("interval", 50)?;
    if k == 0 {
        return Err(CmdError::usage(
            "--interval must be at least 1 (a 1-in-0 selection is undefined)",
        ));
    }
    let method = match args.opt_or("method", "systematic") {
        "systematic" => StreamMethod::Spec(MethodSpec::Systematic { interval: k }),
        "stratified" => StreamMethod::Spec(MethodSpec::StratifiedRandom { bucket: k }),
        "geometric" => StreamMethod::Spec(MethodSpec::GeometricSkip { mean_interval: k }),
        "random" => StreamMethod::Spec(MethodSpec::SimpleRandom {
            fraction: 1.0 / k as f64,
        }),
        "reservoir" => {
            let capacity: usize = args.opt_num("capacity", 100)?;
            if capacity == 0 {
                return Err(CmdError::usage("--capacity must be at least 1"));
            }
            StreamMethod::Reservoir { capacity }
        }
        "sys-timer" | "strat-timer" => {
            return Err(CmdError::usage(
                "timer methods need a rate; use `sweep` which derives it",
            ))
        }
        other => {
            return Err(CmdError::usage(format!(
                "unknown method '{other}' (systematic|stratified|random|geometric|reservoir)"
            )))
        }
    };
    Ok(method)
}

/// One scored window as a JSONL record (hand-rendered; the workspace
/// carries no JSON dependency).
fn jsonl_record(w: &streamkit::WindowReport) -> String {
    let num = |v: f64| {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        }
    };
    let mut s = format!(
        "{{\"index\":{},\"start_us\":{},\"packets\":{},\"selected\":{}",
        w.index,
        w.start_ts.as_u64(),
        w.packets,
        w.selected
    );
    if let (Some(first), Some(last)) = (w.first_ts, w.last_ts) {
        let _ = write!(
            s,
            ",\"first_us\":{},\"last_us\":{}",
            first.as_u64(),
            last.as_u64()
        );
    }
    // Per-window flow accounting (bounded flow table): live flows and
    // flows that began in-window (SYN-marked).
    let _ = write!(s, ",\"flows\":{},\"syn_flows\":{}", w.flows, w.syn_flows);
    // The same telemetry the live scrape endpoint exposes, per window:
    // cumulative shed count, emission→score lag, and process RSS.
    let _ = write!(
        s,
        ",\"shed\":{},\"lag_us\":{},\"rss_kb\":{}",
        w.shed_packets, w.lag_us, w.rss_kb
    );
    match &w.report {
        Some(r) => {
            let _ = write!(
                s,
                ",\"n\":{},\"phi\":{},\"chi2\":{},\"significance\":{}",
                r.sample_size,
                num(r.phi),
                num(r.chi2),
                num(r.significance)
            );
        }
        None => s.push_str(",\"phi\":null"),
    }
    s.push('}');
    s
}

/// `netsample stream <trace.pcap|-> [--window N|DUR] [--slide N|DUR]
/// [--method M] [--interval k] [--capacity c] [--target T] ...` —
/// one-pass windowed characterization in O(window) memory. `-` reads
/// the capture from stdin, so a live `tcpdump -w -` pipes straight in.
/// One tumbling window spanning the whole capture reproduces the batch
/// `score` φ bit-for-bit for every packet-driven method.
///
/// `--soak N` replaces the trace file with an internally generated
/// rate-paced replay of N windows (no positional argument), asserts the
/// process RSS stays within `--rss-budget-kb` of the pre-run baseline
/// (exit 1 otherwise), and appends a `soak:` report line — the
/// bounded-memory evidence the telemetry plane is scraped against.
pub fn stream(args: &Args) -> Result<String, CmdError> {
    let soak: Option<u64> = match args.opt("soak") {
        Some(_) => Some(args.opt_num("soak", 0u64)?),
        None => None,
    };
    expect_positionals(args, usize::from(soak.is_none()))?;
    let target = parse_target(args.opt_or("target", "packet-size"))?;
    let window = WindowSpec::parse(args.opt_or("window", "1000")).map_err(CmdError::usage)?;
    let mut cfg = StreamConfig::new(parse_stream_method(args)?, target, window);
    cfg.slide = args
        .opt("slide")
        .map(WindowSpec::parse)
        .transpose()
        .map_err(CmdError::usage)?;
    cfg.seed = args.opt_num("seed", 1993)?;
    cfg.replication = args.opt_num("replication", 0)?;
    if args.opt("population").is_some() {
        cfg.population_hint = Some(args.opt_num("population", 0usize)?);
    }
    cfg.batch = args.opt_num("batch", cfg.batch)?;
    cfg.queue = args.opt_num("queue", cfg.queue)?;
    if cfg.batch == 0 || cfg.queue == 0 {
        return Err(CmdError::usage("--batch and --queue must be at least 1"));
    }
    cfg.backpressure = match args.opt_or("backpressure", "block") {
        "block" => Backpressure::Block,
        "drop-newest" => Backpressure::DropNewest,
        other => {
            return Err(CmdError::usage(format!(
                "unknown backpressure policy '{other}' (block|drop-newest)"
            )))
        }
    };
    cfg.jobs = parkit::default_jobs();
    if let Some(rule) = args.opt("adaptive-shed") {
        cfg.adaptive_shed = Some(rule.to_string());
        // The control loop reads alert_active{rule}, which only flips on
        // telemetry ticks over the series rings — make sure both run
        // even without --serve.
        obskit::series::ensure_global_series(obskit::SeriesConfig::default());
        obskit::telemetry::ensure_global(obskit::TelemetryConfig::standard());
        let engine = obskit::rules::global_engine();
        if !engine.has_rule(rule) {
            // No rule of that name loaded (via --rules): install the
            // built-in channel high-water tripwire at 3/4 queue depth.
            let hiwater = (3 * cfg.queue).div_ceil(4).max(1);
            let text = format!(
                "rule {rule} value(stream_channel_depth{{stage=\"transform\"}}) >= {hiwater} for 2"
            );
            let parsed = obskit::parse_rules(&text)
                .map_err(|e| CmdError::usage(format!("--adaptive-shed '{rule}': {e}")))?;
            engine
                .add_rules(parsed)
                .map_err(|e| CmdError::data(format!("--adaptive-shed '{rule}': {e}")))?;
        }
    }
    if let Some(ref_path) = args.opt("reference") {
        let reference = load(ref_path)?;
        if reference.is_empty() {
            return Err(CmdError::data("reference trace is empty"));
        }
        cfg.reference = Some(target.population_histogram(reference.packets()));
    }

    let mut soak_report = String::new();
    let summary = if let Some(windows) = soak {
        let window_packets = match window {
            WindowSpec::Count(n) => n,
            WindowSpec::Time(_) => {
                return Err(CmdError::usage(
                    "--soak needs a packet-count --window (the replay is sized in packets)",
                ))
            }
        };
        if windows == 0 || window_packets == 0 {
            return Err(CmdError::usage("--soak and --window must be at least 1"));
        }
        let pace_pps: u64 = args.opt_num("pace-pps", 0u64)?;
        let budget_kb: u64 = args.opt_num("rss-budget-kb", 32_768u64)?;
        // Sample the baseline before the run so the budget measures what
        // the replay *added*, not what the process already held.
        let baseline_kb = obskit::telemetry::rss_kb();
        // Mirror the exit-code gate as a live alert: a scraper (or
        // `watch --fail-on rss_budget`) sees a budget breach while it
        // happens, not only in the exit status afterwards.
        obskit::series::ensure_global_series(obskit::SeriesConfig::default());
        if let Some(baseline) = baseline_kb {
            let engine = obskit::rules::global_engine();
            if !engine.has_rule("rss_budget") {
                let text = format!(
                    "rule rss_budget value(proc_rss_kb) > {} for 2",
                    baseline + budget_kb
                );
                if let Ok(parsed) = obskit::parse_rules(&text) {
                    let _ = engine.add_rules(parsed);
                }
            }
        }
        let telemetry = obskit::telemetry::ensure_global(obskit::TelemetryConfig::standard());
        let reader = netsynth::PacedReader::new(netsynth::ReplayConfig {
            seed: cfg.seed,
            windows,
            window_packets,
            pace_pps,
        });
        let summary = run_stream(BufReader::new(reader), &cfg)?;
        telemetry.sample_now();
        let max = telemetry.max_rss_kb();
        match baseline_kb {
            Some(baseline) if max > 0 => {
                if max > baseline + budget_kb {
                    return Err(CmdError::regression(format!(
                        "soak RSS {max} kB exceeded baseline {baseline} kB + budget {budget_kb} kB"
                    )));
                }
                let _ = writeln!(
                    soak_report,
                    "soak: windows={windows} max_rss_kb={max} baseline_rss_kb={baseline} budget_kb={budget_kb} ok"
                );
            }
            // No /proc on this platform: report the run, skip the gate.
            _ => {
                let _ = writeln!(
                    soak_report,
                    "soak: windows={windows} rss unavailable, budget not asserted"
                );
            }
        }
        summary
    } else {
        let path = args.positional(0, "trace.pcap")?;
        if path == "-" {
            run_stream(BufReader::new(std::io::stdin()), &cfg)?
        } else {
            let f =
                File::open(path).map_err(|e| CmdError::io(format!("cannot open {path}: {e}")))?;
            run_stream(BufReader::new(f), &cfg)?
        }
    };

    if let Some(jsonl) = args.opt("jsonl") {
        let f =
            File::create(jsonl).map_err(|e| CmdError::io(format!("cannot create {jsonl}: {e}")))?;
        let mut sink = BufWriter::new(f);
        for w in &summary.windows {
            writeln!(sink, "{}", jsonl_record(w))
                .map_err(|e| CmdError::io(format!("cannot write {jsonl}: {e}")))?;
        }
        sink.flush()
            .map_err(|e| CmdError::io(format!("cannot write {jsonl}: {e}")))?;
    }

    let mut out = String::new();
    let slide = match cfg.slide {
        Some(s) => format!("sliding by {s}"),
        None => "tumbling".to_string(),
    };
    writeln!(
        out,
        "stream ({}): {} on {}, window {} {}, seed {}",
        summary.format, summary.method, summary.target, cfg.window, slide, cfg.seed
    )?;
    for w in &summary.windows {
        write!(
            out,
            "  window {:>4} start={:<12} n={:<8} selected={:<6} flows={:<6}",
            w.index,
            format!("{}us", w.start_ts.as_u64()),
            w.packets,
            w.selected,
            w.flows
        )?;
        match &w.report {
            Some(r) => writeln!(out, " phi={:.5} chi2={:.2}", r.phi, r.chi2)?,
            None => writeln!(out, " phi=empty")?,
        }
    }
    if summary.dropped_batches > 0 {
        writeln!(
            out,
            "backpressure shed {} batch{} ({} packets)",
            summary.dropped_batches,
            if summary.dropped_batches == 1 {
                ""
            } else {
                "es"
            },
            summary.dropped_packets
        )?;
    }
    let scored = summary
        .windows
        .iter()
        .filter(|w| w.report.is_some())
        .count();
    write!(
        out,
        "{} packets, {} selected, {} window{} ({scored} scored)",
        summary.packets,
        summary.selected,
        summary.windows.len(),
        if summary.windows.len() == 1 { "" } else { "s" },
    )?;
    match summary.mean_phi() {
        Some(phi) => writeln!(out, ", mean phi={phi:.5}")?,
        None => writeln!(out)?,
    }
    out.push_str(&soak_report);
    Ok(out)
}

/// `netsample fuzz [--seed S] [--mutations N] [--cases M] [--corpus-packets P]`
/// — run the faultkit mutation campaign and state-machine fuzzer with a
/// fixed seed and print a deterministic summary. Any contract violation
/// (a panic, an incorrect accept, a salvage inconsistency) is listed and
/// fails the command with exit code 1, so CI can gate on it; the digests
/// let two runs be compared byte-for-byte.
pub fn fuzz(args: &Args) -> Result<String, CmdError> {
    expect_positionals(args, 0)?;
    let seed: u64 = args.opt_num("seed", 1993)?;
    let mutations: u32 = args.opt_num("mutations", 10_000)?;
    let cases: u32 = args.opt_num("cases", 1_000)?;
    let corpus_packets: usize = args.opt_num("corpus-packets", 60)?;
    if mutations == 0 && cases == 0 {
        return Err(CmdError::usage(
            "--mutations and --cases are both 0; nothing to do",
        ));
    }

    let campaign = faultkit::run_campaign(&faultkit::CampaignConfig {
        seed,
        iterations: mutations,
        corpus_packets,
    });
    let state = faultkit::run_state_fuzz(&faultkit::StateFuzzConfig { seed, cases });

    let mut out = String::new();
    writeln!(
        out,
        "mutation campaign: seed {seed}, {} cases, digest {:016x}",
        campaign.cases, campaign.digest
    )?;
    for (outcome, count) in &campaign.outcomes {
        writeln!(out, "  {outcome:<28} {count:>8}")?;
    }
    writeln!(
        out,
        "state fuzz: seed {seed}, {} cases, {} offers, digest {:016x}",
        state.cases, state.offers, state.digest
    )?;
    for (outcome, count) in &state.outcomes {
        writeln!(out, "  {outcome:<28} {count:>8}")?;
    }
    let findings: Vec<String> = campaign
        .findings
        .iter()
        .chain(&state.findings)
        .map(ToString::to_string)
        .collect();
    writeln!(out, "findings: {}", findings.len())?;
    if findings.is_empty() {
        Ok(out)
    } else {
        Err(CmdError::regression(format!(
            "{out}{}\n",
            findings.join("\n")
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(raw: &[&str], known: &[&str]) -> Args {
        Args::parse(raw.iter().map(|s| s.to_string()), known).unwrap()
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("netsample_cli_{name}_{}.pcap", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn synth_analyze_sample_score_pipeline() {
        let pop = tmp("pop");
        let sam = tmp("sam");

        let msg = synth(&args(
            &[&pop, "--seconds", "20", "--seed", "5"],
            &["seconds", "seed", "profile"],
        ))
        .unwrap();
        assert!(msg.contains("wrote"));

        let report = analyze(&args(&[&pop], &[])).unwrap();
        assert!(report.contains("packet size"));
        assert!(report.contains("protocol distribution"));

        let msg = sample(&args(
            &[&pop, &sam, "--method", "systematic", "--interval", "50"],
            &["method", "interval", "seed"],
        ))
        .unwrap();
        assert!(msg.contains("selected"));

        let scored = score(&args(
            &[&pop, "--interval", "50", "--target", "interarrival"],
            &["method", "interval", "seed", "target", "replications"],
        ))
        .unwrap();
        assert!(scored.contains("mean phi"));

        let cmp = compare(&args(&[&pop, &sam], &["target"])).unwrap();
        assert!(cmp.contains("phi="));

        std::fs::remove_file(&pop).ok();
        std::fs::remove_file(&sam).ok();
    }

    #[test]
    fn sweep_renders_method_columns() {
        let pop = tmp("sweep");
        synth(&args(
            &[&pop, "--seconds", "15", "--seed", "3"],
            &["seconds", "seed", "profile"],
        ))
        .unwrap();
        let table = sweep(&args(
            &[&pop, "--max-interval", "32"],
            &["target", "replications", "seed", "max-interval"],
        ))
        .unwrap();
        assert!(table.contains("systematic"));
        assert!(table.contains("strat-timer"));
        assert!(table.lines().count() >= 4);
        std::fs::remove_file(&pop).ok();
    }

    #[test]
    fn extra_positionals_are_rejected() {
        let e = analyze(&args(&["a.pcap", "b.pcap"], &[])).unwrap_err();
        assert!(e.to_string().contains("unexpected extra argument"));
    }

    #[test]
    fn errors_are_user_legible() {
        let e = analyze(&args(&["/nonexistent/x.pcap"], &[])).unwrap_err();
        assert!(e.to_string().contains("cannot open"));
        let e = parse_target("sizes").unwrap_err();
        assert!(e.to_string().contains("unknown target"));
    }

    #[test]
    fn error_classes_carry_sysexits_codes() {
        assert_eq!(CmdError::usage("x").exit_code(), 64);
        assert_eq!(CmdError::data("x").exit_code(), 65);
        assert_eq!(CmdError::io("x").exit_code(), 74);
    }

    #[test]
    fn failures_classify_by_cause() {
        // Missing file: the OS failed us.
        let e = analyze(&args(&["/nonexistent/x.pcap"], &[])).unwrap_err();
        assert_eq!(e.exit_code(), 74, "{e}");
        // Bad flag value: caller error.
        let e = parse_method(&args(&["--method", "magic"], &["method"])).unwrap_err();
        assert_eq!(e.exit_code(), 64, "{e}");
        // Readable file, not a pcap: data error.
        let garbage = tmp("garbage");
        std::fs::write(&garbage, b"this is not a capture file").unwrap();
        let e = analyze(&args(&[&garbage], &[])).unwrap_err();
        assert_eq!(e.exit_code(), 65, "{e}");
        std::fs::remove_file(&garbage).ok();
    }

    #[test]
    fn degenerate_method_flags_are_usage_errors() {
        // `--interval 0` must exit 64 for every method, not panic or
        // divide by zero (`random` derives fraction = 1/k).
        for method in ["systematic", "stratified", "random", "geometric"] {
            let e = parse_method(&args(
                &["--method", method, "--interval", "0"],
                &["method", "interval"],
            ))
            .unwrap_err();
            assert_eq!(e.exit_code(), 64, "{method}: {e}");
            assert!(e.to_string().contains("--interval"), "{method}: {e}");
        }
    }

    #[test]
    fn lossy_analyze_salvages_a_truncated_capture() {
        let pop = tmp("lossy_pop");
        synth(&args(
            &[&pop, "--seconds", "20", "--seed", "5"],
            &["seconds", "seed", "profile"],
        ))
        .unwrap();

        // Chop the file mid-record: strict analyze refuses, lossy reports
        // the damage and analyzes what survived.
        let bytes = std::fs::read(&pop).unwrap();
        let cut = tmp("lossy_cut");
        std::fs::write(&cut, &bytes[..bytes.len() - 7]).unwrap();

        let e = analyze(&args(&[&cut], &[])).unwrap_err();
        assert_eq!(e.exit_code(), 65, "{e}");

        let lossy = |raw: &[&str]| {
            crate::args::Args::parse_with_flags(raw.iter().map(|s| s.to_string()), &[], &["lossy"])
                .unwrap()
        };
        let report = analyze(&lossy(&[&cut, "--lossy"])).unwrap();
        assert!(report.contains("lossy ingest (pcap)"), "{report}");
        assert!(report.contains("first fault at byte"), "{report}");
        assert!(report.contains("packet size"), "{report}");

        // A clean capture under --lossy reports no fault and the same
        // analysis body.
        let clean = analyze(&lossy(&[&pop, "--lossy"])).unwrap();
        assert!(clean.contains("lossy ingest (pcap)"), "{clean}");
        assert!(!clean.contains("first fault"), "{clean}");

        std::fs::remove_file(&pop).ok();
        std::fs::remove_file(&cut).ok();
    }

    const FLOWS_OPTS: &[&str] = &["method", "interval", "replications", "jsonl"];

    #[test]
    fn flows_inverts_a_zipf_pack_end_to_end() {
        let pop = tmp("flows_pop");
        synth(&args(
            &[&pop, "--profile", "zipf", "--seconds", "20", "--seed", "9"],
            &["seconds", "seed", "profile"],
        ))
        .unwrap();

        let out = flows(&args(
            &[&pop, "--interval", "10", "--replications", "3"],
            FLOWS_OPTS,
        ))
        .unwrap();
        assert!(out.contains("flow inversion: 1-in-10"), "{out}");
        for name in ["naive", "tail", "em"] {
            assert!(out.contains(name), "{out}");
        }

        std::fs::remove_file(&pop).ok();
    }

    #[test]
    fn flows_jsonl_is_deterministic() {
        let pop = tmp("flows_jsonl_pop");
        synth(&args(
            &[&pop, "--profile", "zipf", "--seconds", "15", "--seed", "4"],
            &["seconds", "seed", "profile"],
        ))
        .unwrap();

        let sink_a = tmp("flows_jsonl_a");
        let sink_b = tmp("flows_jsonl_b");
        for sink in [&sink_a, &sink_b] {
            flows(&args(
                &[
                    &pop,
                    "--interval",
                    "20",
                    "--replications",
                    "2",
                    "--jsonl",
                    sink,
                ],
                FLOWS_OPTS,
            ))
            .unwrap();
        }
        let a = std::fs::read(&sink_a).unwrap();
        let b = std::fs::read(&sink_b).unwrap();
        assert!(!a.is_empty());
        assert_eq!(a, b, "two identical runs must emit identical JSONL");
        let text = String::from_utf8(a).unwrap();
        let first = text.lines().next().unwrap();
        assert!(first.starts_with("{\"estimator\":\"naive\""), "{first}");
        assert!(first.contains("\"phi\":"), "{first}");

        std::fs::remove_file(&pop).ok();
        std::fs::remove_file(&sink_a).ok();
        std::fs::remove_file(&sink_b).ok();
    }

    #[test]
    fn flows_rejects_bad_invocations_and_bad_data() {
        let pop = tmp("flows_err_pop");
        synth(&args(
            &[&pop, "--profile", "zipf", "--seconds", "10"],
            &["seconds", "seed", "profile"],
        ))
        .unwrap();

        // --interval 0 and non-systematic methods: usage (64).
        let e = flows(&args(&[&pop, "--interval", "0"], FLOWS_OPTS)).unwrap_err();
        assert_eq!(e.exit_code(), 64, "{e}");
        let e = flows(&args(&[&pop, "--method", "stratified"], FLOWS_OPTS)).unwrap_err();
        assert_eq!(e.exit_code(), 64, "{e}");
        let e = flows(&args(&[&pop, "--replications", "0"], FLOWS_OPTS)).unwrap_err();
        assert_eq!(e.exit_code(), 64, "{e}");

        // Truncated capture: data (65).
        let bytes = std::fs::read(&pop).unwrap();
        let cut = tmp("flows_err_cut");
        std::fs::write(&cut, &bytes[..bytes.len() - 7]).unwrap();
        let e = flows(&args(&[&cut], FLOWS_OPTS)).unwrap_err();
        assert_eq!(e.exit_code(), 65, "{e}");

        // Missing file: I/O (74).
        let e = flows(&args(&["/nonexistent/flows.pcap"], FLOWS_OPTS)).unwrap_err();
        assert_eq!(e.exit_code(), 74, "{e}");

        std::fs::remove_file(&pop).ok();
        std::fs::remove_file(&cut).ok();
    }

    const STREAM_OPTS: &[&str] = &[
        "window",
        "slide",
        "method",
        "interval",
        "capacity",
        "target",
        "seed",
        "replication",
        "population",
        "batch",
        "queue",
        "backpressure",
        "jsonl",
        "reference",
        "soak",
        "pace-pps",
        "rss-budget-kb",
        "adaptive-shed",
    ];

    #[test]
    fn stream_windows_a_capture_end_to_end() {
        let pop = tmp("stream_pop");
        synth(&args(
            &[&pop, "--seconds", "20", "--seed", "5"],
            &["seconds", "seed", "profile"],
        ))
        .unwrap();

        let out = stream(&args(
            &[&pop, "--window", "2000", "--interval", "50"],
            STREAM_OPTS,
        ))
        .unwrap();
        assert!(out.contains("stream (pcap): systematic"), "{out}");
        assert!(out.contains("window    0"), "{out}");
        assert!(out.contains("mean phi="), "{out}");

        // Time windows and the reservoir, which needs no population.
        let out = stream(&args(
            &[
                &pop,
                "--window",
                "5s",
                "--method",
                "reservoir",
                "--capacity",
                "80",
            ],
            STREAM_OPTS,
        ))
        .unwrap();
        assert!(out.contains("reservoir(k=80)"), "{out}");
        assert!(out.contains("window 5s tumbling"), "{out}");

        std::fs::remove_file(&pop).ok();
    }

    #[test]
    fn stream_writes_jsonl_per_window() {
        let pop = tmp("stream_jsonl_pop");
        synth(&args(
            &[&pop, "--seconds", "15", "--seed", "8"],
            &["seconds", "seed", "profile"],
        ))
        .unwrap();
        let sink = tmp("stream_jsonl_out");
        let out = stream(&args(
            &[&pop, "--window", "1500", "--jsonl", &sink],
            STREAM_OPTS,
        ))
        .unwrap();
        let lines: Vec<String> = std::fs::read_to_string(&sink)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect();
        let windows = out.lines().filter(|l| l.contains("start=")).count();
        assert_eq!(lines.len(), windows, "one JSONL record per window");
        assert!(lines[0].starts_with("{\"index\":0,"), "{}", lines[0]);
        assert!(lines[0].contains("\"phi\":"), "{}", lines[0]);
        // Every record carries the telemetry triple alongside the score.
        for line in &lines {
            for field in ["\"shed\":", "\"lag_us\":", "\"rss_kb\":"] {
                assert!(line.contains(field), "missing {field} in {line}");
            }
        }
        std::fs::remove_file(&pop).ok();
        std::fs::remove_file(&sink).ok();
    }

    #[test]
    fn stream_soak_replays_synthetic_windows_and_reports_rss() {
        // --soak takes no trace argument: the paced replay is generated
        // in-process, windowed, and the RSS budget asserted at the end.
        let out = stream(&args(
            &[
                "--soak",
                "4",
                "--window",
                "500",
                "--interval",
                "25",
                "--seed",
                "9",
            ],
            STREAM_OPTS,
        ))
        .unwrap();
        assert!(out.contains("stream (pcap): systematic"), "{out}");
        assert_eq!(out.lines().filter(|l| l.contains("start=")).count(), 4);
        assert!(
            out.contains("soak: windows=4") || out.contains("rss unavailable"),
            "{out}"
        );
        if let Some(line) = out.lines().find(|l| l.starts_with("soak:")) {
            assert!(
                line.ends_with("ok") || line.contains("rss unavailable"),
                "{line}"
            );
        }
    }

    #[test]
    fn stream_soak_rejects_bad_shapes() {
        // A positional trace alongside --soak, time windows, and a zero
        // window count are all usage errors.
        for bad in [
            vec!["x.pcap", "--soak", "3"],
            vec!["--soak", "3", "--window", "5s"],
            vec!["--soak", "0"],
        ] {
            let e = stream(&args(&bad, STREAM_OPTS)).unwrap_err();
            assert_eq!(e.exit_code(), 64, "{bad:?}: {e}");
        }
    }

    #[test]
    fn stream_soak_budget_violation_is_a_regression_exit() {
        // A 0 kB budget means "no RSS growth at all": either the run
        // genuinely held flat (reports ok) or the gate must trip with the
        // regression exit code — never any other failure class.
        match stream(&args(
            &["--soak", "2", "--window", "200", "--rss-budget-kb", "0"],
            STREAM_OPTS,
        )) {
            Err(e) => {
                assert_eq!(e.exit_code(), 1, "{e}");
                assert!(e.to_string().contains("RSS"), "{e}");
            }
            Ok(out) => assert!(out.contains("soak: windows=2"), "{out}"),
        }
    }

    #[test]
    fn stream_adaptive_shed_installs_builtin_rule_and_rejects_bad_names() {
        // No rule of this name is loaded, so stream installs the
        // built-in channel high-water tripwire under it and still
        // completes the soak.
        let out = stream(&args(
            &[
                "--soak",
                "2",
                "--window",
                "200",
                "--queue",
                "4",
                "--adaptive-shed",
                "cli_shed_probe",
            ],
            STREAM_OPTS,
        ))
        .unwrap();
        assert!(out.contains("stream (pcap): systematic"), "{out}");
        assert!(obskit::rules::global_engine().has_rule("cli_shed_probe"));

        // A name the rule grammar rejects is a usage error, surfaced
        // before any packet is read.
        let e = stream(&args(
            &[
                "--soak",
                "1",
                "--window",
                "100",
                "--adaptive-shed",
                "bad name",
            ],
            STREAM_OPTS,
        ))
        .unwrap_err();
        assert_eq!(e.exit_code(), 64, "{e}");
    }

    #[test]
    fn stream_classifies_failures_like_the_salvage_reader() {
        let pop = tmp("stream_cut_pop");
        synth(&args(
            &[&pop, "--seconds", "10", "--seed", "2"],
            &["seconds", "seed", "profile"],
        ))
        .unwrap();
        let bytes = std::fs::read(&pop).unwrap();
        let cut = tmp("stream_cut");
        std::fs::write(&cut, &bytes[..bytes.len() - 7]).unwrap();

        // A capture that ends mid-record is a data error (65) carrying
        // the byte offset of the broken record, like `analyze --lossy`.
        let e = stream(&args(&[&cut], STREAM_OPTS)).unwrap_err();
        assert_eq!(e.exit_code(), 65, "{e}");
        assert!(e.to_string().contains("at byte"), "{e}");

        // Caller mistakes are usage errors (64), surfaced before any
        // byte is read.
        for bad in [
            vec![&pop as &str, "--window", "0"],
            vec![&pop, "--window", "10x"],
            vec![&pop, "--window", "10s", "--slide", "3s"],
            vec![&pop, "--method", "random"], // needs --population
            vec![&pop, "--method", "reservoir", "--slide", "500"],
            vec![&pop, "--backpressure", "sometimes"],
        ] {
            let e = stream(&args(&bad, STREAM_OPTS)).unwrap_err();
            assert_eq!(e.exit_code(), 64, "{bad:?}: {e}");
        }

        std::fs::remove_file(&pop).ok();
        std::fs::remove_file(&cut).ok();
    }

    #[test]
    fn stream_phi_matches_batch_score_on_one_window() {
        // The CLI-level equivalence smoke: one tumbling window spanning
        // the capture reproduces `score`'s replication-0 φ digits.
        let pop = tmp("stream_eq_pop");
        synth(&args(
            &[&pop, "--seconds", "12", "--seed", "6"],
            &["seconds", "seed", "profile"],
        ))
        .unwrap();
        let n = load(&pop).unwrap().len();
        let streamed = stream(&args(
            &[
                &pop,
                "--window",
                &n.to_string(),
                "--interval",
                "50",
                "--seed",
                "11",
            ],
            STREAM_OPTS,
        ))
        .unwrap();
        let scored = score(&args(
            &[
                &pop,
                "--interval",
                "50",
                "--seed",
                "11",
                "--replications",
                "1",
            ],
            &["method", "interval", "seed", "target", "replications"],
        ))
        .unwrap();
        let phi_of = |text: &str| {
            let at = text.find("phi=").expect("phi in output");
            text[at + 4..at + 11].to_string()
        };
        assert_eq!(phi_of(&streamed), phi_of(&scored), "{streamed}\n{scored}");
        std::fs::remove_file(&pop).ok();
    }

    #[test]
    fn fuzz_summary_is_deterministic_and_clean() {
        let fuzz_args = args(
            &[
                "--seed",
                "42",
                "--mutations",
                "120",
                "--cases",
                "90",
                "--corpus-packets",
                "12",
            ],
            &["seed", "mutations", "cases", "corpus-packets"],
        );
        let a = fuzz(&fuzz_args).unwrap();
        let b = fuzz(&fuzz_args).unwrap();
        assert_eq!(a, b, "fuzz summary must be byte-identical across runs");
        assert!(a.contains("mutation campaign: seed 42"), "{a}");
        assert!(a.contains("state fuzz: seed 42"), "{a}");
        assert!(a.contains("digest"), "{a}");
        assert!(a.trim_end().ends_with("findings: 0"), "{a}");
    }

    #[test]
    fn flows_profile_synthesizes() {
        let p = tmp("flows");
        let msg = synth(&args(
            &[&p, "--profile", "flows", "--seconds", "10"],
            &["seconds", "seed", "profile"],
        ))
        .unwrap();
        assert!(msg.contains("wrote"));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn unknown_profile_and_method_error() {
        let p = tmp("bad");
        let e = synth(&args(&[&p, "--profile", "nope"], &["profile"])).unwrap_err();
        assert!(e.to_string().contains("unknown profile"));
        // sample with bad method
        synth(&args(&[&p, "--seconds", "2"], &["seconds", "profile"])).unwrap();
        let e = sample(&args(
            &[&p, &tmp("o"), "--method", "magic"],
            &["method", "interval"],
        ))
        .unwrap_err();
        assert!(e.to_string().contains("unknown method"));
        std::fs::remove_file(&p).ok();
    }
}
