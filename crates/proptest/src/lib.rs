//! In-tree property-testing shim.
//!
//! A *workspace-local stand-in* for the crates.io `proptest` crate: the
//! CI environment cannot reach a registry, so the subset of the API the
//! workspace's property tests use is hand-rolled here on `std` plus the
//! in-tree `rand` crate. Supported surface:
//!
//! * [`Strategy`] with [`Strategy::prop_map`];
//! * ranges (`0u64..100`, `1u16..=9`, float ranges) and tuples of
//!   strategies (arity ≤ 8) as strategies;
//! * [`collection::vec`] with a `Range<usize>` size;
//! * [`any`] for primitive types;
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header, and
//!   [`prop_assert!`] / [`prop_assert_eq!`];
//! * [`prelude`], exporting all of the above plus the `prop` module
//!   alias.
//!
//! Differences from real proptest, deliberately accepted: cases are
//! generated from a seed derived from the test's module path (stable
//! across runs, different per test), and there is **no shrinking** — a
//! failing case panics with the assertion message directly.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies by the [`proptest!`] runner.
pub type TestRng = StdRng;

/// Build the deterministic per-test generator (seeded from the test's
/// full path so each test explores a different but stable stream).
#[must_use]
pub fn rng_for_test(test_path: &str) -> TestRng {
    let mut h = DefaultHasher::new();
    test_path.hash(&mut h);
    StdRng::seed_from_u64(h.finish())
}

/// Runner configuration. Only the number of generated cases is
/// supported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::RngExt;
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::RngExt;
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_strategy_for_tuples {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuples! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Types with a canonical "anything goes" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// The full-range strategy for this type.
    type Strategy: Strategy<Value = Self>;

    /// Build the strategy.
    fn arbitrary() -> Self::Strategy;
}

/// A strategy drawing any value of a primitive type uniformly.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy { AnyPrimitive(std::marker::PhantomData) }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        use rand::Rng;
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

/// The strategy generating any value of `T` (`any::<u8>()` etc.).
#[must_use]
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::RngExt;
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.random_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` strategy: each element from `element`, length uniform in
    /// `len` (half-open, like proptest's `SizeRange` from a range).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Assert inside a [`proptest!`] body (panics with the message; no
/// shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr; $( #[test] fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// Define property tests: each `fn name(x in strategy, ...) { ... }`
/// becomes a `#[test]` running the body over `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Everything a property-test file needs, including the `prop` module
/// alias (`prop::collection::vec`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
    };

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn vec_strategy_respects_length_range() {
        let s = prop::collection::vec(0u8..=255, 3..10);
        let mut rng = crate::rng_for_test("vec_strategy");
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((3..10).contains(&v.len()));
        }
    }

    #[test]
    fn map_transforms_values() {
        let s = (1u32..5).prop_map(|x| x * 10);
        let mut rng = crate::rng_for_test("map");
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 10 == 0 && (10..50).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_in_range(x in 5u64..10, y in 0.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn tuples_and_vecs_compose(
            v in prop::collection::vec((0u16..100, any::<bool>()), 1..20),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (n, _b) in v {
                prop_assert!(n < 100);
            }
        }
    }
}
