//! Tumbling and sliding characterization windows.
//!
//! The paper's operational setting characterizes traffic in collection
//! cycles (the 15-minute NSFNET reporting interval, §2); a streaming
//! monitor generalizes that to windows over packet count or time,
//! tumbling or sliding. Each window carries the paper's binned target
//! histograms for its population and its sample, built *incrementally*
//! so memory stays O(window), and reproduces the batch path exactly: a
//! window's histograms are bit-identical to running
//! [`Target::population_histogram`] / [`Target::sample_histogram`]
//! over that window's packet slice.
//!
//! Sliding windows are composed from **stride buckets**: a window of
//! length `L` sliding by `S` (`S` divides `L`) is the merge of `L/S`
//! consecutive bucket histograms. Only `L/S` buckets are ever held —
//! the oldest is evicted as each window completes — so sliding costs
//! the same bounded memory as tumbling. The only subtlety is the
//! interarrival target at bucket seams: a bucket's first packet has a
//! well-defined gap *within a window that also contains its
//! predecessor*, but not within one where it is the first packet; each
//! bucket therefore records that single boundary observation
//! separately and the merge applies it exactly when the batch
//! semantics would.

use crate::sampler::{Offer, StreamSampler};
use nettrace::{FlowTable, Histogram, Micros, PacketRecord};
use sampling::Target;
use std::collections::VecDeque;

/// Per-bucket flow budget. A window reports at most
/// `buckets_per_window × this` live flows, keeping the engine's
/// O(window) memory bound even on flow-id-free traffic where every
/// distinct 5-tuple is a flow; overflow evicts the
/// least-recently-updated flow deterministically.
///
/// The budget is enforced **once, at the window merge** — buckets
/// aggregate unbounded. A capacity-bounded table pays an LRU order
/// index (a `BTreeSet` insert/remove pair) on every packet that
/// advances a flow's last-seen time, which put two O(log n) tree
/// operations in the per-packet hot path; an unbounded table is one
/// hash probe per packet, and the merge keeps the budget's worth of
/// most-recently-updated flows in a single O(flows) selection
/// ([`FlowTable::truncate_lru`]) with the same deterministic
/// least-recently-updated-first, smallest-key-on-ties policy.
const BUCKET_FLOW_CAP: usize = 4_096;

/// Window (or slide stride) extent: a packet count or a time span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowSpec {
    /// A fixed number of packets.
    Count(u64),
    /// A fixed time span (boundaries at `start + n·span`, half-open).
    Time(Micros),
}

impl WindowSpec {
    /// Parse a CLI-style spec: a bare integer is a packet count, an
    /// integer with a `us`/`ms`/`s`/`m` suffix is a duration.
    ///
    /// # Errors
    /// A human-readable message for malformed or zero specs.
    pub fn parse(s: &str) -> Result<WindowSpec, String> {
        let s = s.trim();
        let split = s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
        let (digits, unit) = s.split_at(split);
        let n: u64 = digits
            .parse()
            .map_err(|_| format!("bad window spec '{s}': expected <packets> or <n><us|ms|s|m>"))?;
        if n == 0 {
            return Err(format!("bad window spec '{s}': must be positive"));
        }
        match unit {
            "" => Ok(WindowSpec::Count(n)),
            "us" => Ok(WindowSpec::Time(Micros(n))),
            "ms" => Ok(WindowSpec::Time(Micros(n.saturating_mul(1_000)))),
            "s" => Ok(WindowSpec::Time(Micros(n.saturating_mul(1_000_000)))),
            "m" => Ok(WindowSpec::Time(Micros(n.saturating_mul(60_000_000)))),
            other => Err(format!(
                "bad window unit '{other}' in '{s}': use us, ms, s or m"
            )),
        }
    }
}

impl std::fmt::Display for WindowSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WindowSpec::Count(n) => write!(f, "{n} packets"),
            WindowSpec::Time(t) => {
                let us = t.as_u64();
                if us % 60_000_000 == 0 {
                    write!(f, "{}m", us / 60_000_000)
                } else if us % 1_000_000 == 0 {
                    write!(f, "{}s", us / 1_000_000)
                } else if us % 1_000 == 0 {
                    write!(f, "{}ms", us / 1_000)
                } else {
                    write!(f, "{us}us")
                }
            }
        }
    }
}

/// One completed window, ready for scoring: the population and sample
/// histograms plus bookkeeping. Produced by [`Windower`], consumed by
/// the scorer stage.
#[derive(Debug, Clone)]
pub struct WindowPayload {
    /// Emission sequence number (fully-empty windows are skipped).
    pub index: u64,
    /// Window grid start: the first bucket's start time (time windows)
    /// or its first packet's timestamp (count windows).
    pub start_ts: Micros,
    /// First and last packet timestamps actually observed (None for a
    /// window whose packets all sit in later buckets).
    pub first_ts: Option<Micros>,
    /// Last packet timestamp in the window.
    pub last_ts: Option<Micros>,
    /// Packets in the window.
    pub packets: u64,
    /// Packets the sampler selected in the window.
    pub selected: u64,
    /// The window's parent-population histogram.
    pub population: Histogram,
    /// The sample's histogram.
    pub sample: Histogram,
    /// Live flows observed in the window (synthetic-id or 5-tuple
    /// keyed, budget-bounded at the window merge — see
    /// [`BUCKET_FLOW_CAP`] and [`Windower::with_flow_budget`]).
    pub flows: u64,
    /// Window flows that carried a SYN (≈ flows that *began* in the
    /// window; the flow generators SYN-mark each flow's first packet).
    pub syn_flows: u64,
    /// Flows the window budget evicted at this window's merge.
    pub evicted_flows: u64,
    /// Sizes (packets per flow, key order) of the flows seen among the
    /// *selected* packets — the sampled flow table a 1-in-k inversion
    /// estimator runs on. Bounded by the same window flow budget.
    pub sampled_sizes: Vec<u64>,
    /// Sampled-table flows whose selected packets included a SYN.
    pub sampled_syn_flows: u64,
}

/// One stride bucket: the window building block.
struct Bucket {
    start_ts: Micros,
    first_ts: Option<Micros>,
    last_ts: Option<Micros>,
    packets: u64,
    selected: u64,
    population: Histogram,
    sample: Histogram,
    flows: FlowTable,
    /// Flows among the *selected* packets only — what a collector
    /// downstream of the sampler would aggregate, and the input the
    /// statkit inversion estimators expect.
    sampled: FlowTable,
    /// The first packet's interarrival observation with its
    /// *cross-bucket* gap — applied by the window merge exactly when
    /// an earlier bucket of the same window holds its predecessor.
    pop_edge: Option<(u64, u64)>,
    /// Same, for the sample histogram (set when that packet was
    /// selected).
    sam_edge: Option<(u64, u64)>,
}

impl Bucket {
    fn new(start_ts: Micros, target: Target) -> Self {
        Bucket {
            start_ts,
            first_ts: None,
            last_ts: None,
            packets: 0,
            selected: 0,
            population: Histogram::new(target.bins()),
            sample: Histogram::new(target.bins()),
            // Unbounded on the hot path; the window merge enforces the
            // flow budget (see BUCKET_FLOW_CAP). Pre-sized to the
            // budget so a flow-heavy bucket skips the rehash chain.
            flows: {
                let mut t = FlowTable::unbounded();
                t.reserve(BUCKET_FLOW_CAP);
                t
            },
            // Selected packets are a 1-in-k thinning of the stream; the
            // sampled table stays small and grows on demand.
            sampled: FlowTable::unbounded(),
            pop_edge: None,
            sam_edge: None,
        }
    }
}

/// Streaming window state machine: offers packets to its sampler,
/// accumulates per-bucket histograms, and emits completed
/// [`WindowPayload`]s with bounded-memory bucket eviction.
pub struct Windower {
    target: Target,
    stride: WindowSpec,
    buckets_per_window: usize,
    sampler: Box<dyn StreamSampler>,
    /// Completed buckets of the in-progress window(s); holds at most
    /// `buckets_per_window - 1` entries between offers.
    ring: VecDeque<Bucket>,
    cur: Option<Bucket>,
    /// Current bucket's grid start (time mode).
    cur_start: Micros,
    prev_ts: Option<Micros>,
    next_index: u64,
    emitted: u64,
    packets_total: u64,
    selected_total: u64,
    /// Per-window flow budget override; `None` keeps the default
    /// `BUCKET_FLOW_CAP × buckets_per_window`.
    flow_budget: Option<usize>,
}

impl Windower {
    /// New windower over `window`, sliding by `slide` (tumbling when
    /// `None`).
    ///
    /// # Panics
    /// Panics on specs the engine's validation rejects: zero extents,
    /// mixed count/time kinds, or a window that is not a multiple of
    /// its slide.
    #[must_use]
    pub fn new(
        target: Target,
        window: WindowSpec,
        slide: Option<WindowSpec>,
        sampler: Box<dyn StreamSampler>,
    ) -> Self {
        let stride = slide.unwrap_or(window);
        let (win_n, stride_n) = match (window, stride) {
            (WindowSpec::Count(w), WindowSpec::Count(s)) => (w, s),
            (WindowSpec::Time(w), WindowSpec::Time(s)) => (w.as_u64(), s.as_u64()),
            _ => panic!("window and slide must both be counts or both durations"),
        };
        assert!(win_n > 0 && stride_n > 0, "window extents must be positive");
        assert!(
            win_n % stride_n == 0,
            "window ({win_n}) must be a multiple of its slide ({stride_n})"
        );
        Windower {
            target,
            stride,
            buckets_per_window: (win_n / stride_n) as usize,
            sampler,
            ring: VecDeque::new(),
            cur: None,
            cur_start: Micros::ZERO,
            prev_ts: None,
            next_index: 0,
            emitted: 0,
            packets_total: 0,
            selected_total: 0,
            flow_budget: None,
        }
    }

    /// Override the per-window flow budget (default
    /// `BUCKET_FLOW_CAP × buckets_per_window`). A collector that knows
    /// its per-lane flow arrival rate sizes the budget to it; overflow
    /// still evicts least-recently-updated flows deterministically.
    ///
    /// # Panics
    /// Panics when `budget == 0` — a windower that may keep no flows
    /// cannot report flow counts.
    #[must_use]
    pub fn with_flow_budget(mut self, budget: usize) -> Self {
        assert!(budget > 0, "flow budget must be positive");
        self.flow_budget = Some(budget);
        self
    }

    /// Flows currently held across the open bucket and the ring — the
    /// instantaneous live-flow count a collector gauge publishes.
    #[must_use]
    pub fn live_flows(&self) -> u64 {
        let cur = self.cur.as_ref().map_or(0, |b| b.flows.len() as u64);
        cur + self.ring.iter().map(|b| b.flows.len() as u64).sum::<u64>()
    }

    /// Packets offered so far.
    #[must_use]
    pub fn packets(&self) -> u64 {
        self.packets_total
    }

    /// Packets selected so far (buffered samplers count at flush).
    #[must_use]
    pub fn selected(&self) -> u64 {
        self.selected_total
    }

    /// The sampler's short name.
    #[must_use]
    pub fn sampler_name(&self) -> &'static str {
        self.sampler.name()
    }

    /// Offer one packet (arrival order); returns any windows it
    /// completed.
    pub fn offer(&mut self, pkt: &PacketRecord) -> Vec<WindowPayload> {
        let mut out = Vec::new();
        self.offer_into(pkt, &mut out);
        out
    }

    /// Offer a decoded chunk in arrival order, appending every window it
    /// completes to one output vector. Exactly the left fold of
    /// [`Windower::offer`] — bit-identical windows — without a returned
    /// `Vec` per packet.
    pub fn offer_slice(&mut self, pkts: &[PacketRecord]) -> Vec<WindowPayload> {
        let mut out = Vec::new();
        for p in pkts {
            self.offer_into(p, &mut out);
        }
        out
    }

    fn offer_into(&mut self, pkt: &PacketRecord, out: &mut Vec<WindowPayload>) {
        let edge_gap = self
            .prev_ts
            .map(|t| pkt.timestamp.saturating_sub(t).as_u64());

        match self.stride {
            WindowSpec::Time(stride) => {
                let s = stride.as_u64().max(1);
                if self.cur.is_none() {
                    // The first packet anchors the window grid.
                    self.cur_start = pkt.timestamp;
                    self.cur = Some(Bucket::new(self.cur_start, self.target));
                } else {
                    let ahead = pkt
                        .timestamp
                        .as_u64()
                        .saturating_sub(self.cur_start.as_u64())
                        / s;
                    // Close every bucket the packet has moved past. After
                    // `buckets_per_window` closes all old content has
                    // rotated out, so a longer gap holds only fully-empty
                    // windows: jump over them instead of iterating.
                    let closes = (ahead as usize).min(self.buckets_per_window);
                    for _ in 0..closes {
                        self.close_current(out);
                        self.cur_start = Micros(self.cur_start.as_u64() + s);
                        self.cur = Some(Bucket::new(self.cur_start, self.target));
                    }
                    if ahead > closes as u64 {
                        let skipped = ahead - closes as u64;
                        self.cur_start = Micros(self.cur_start.as_u64() + skipped * s);
                        // The ring holds only empty gap buckets now;
                        // rebuild them on the jumped-to grid positions.
                        self.ring.clear();
                        for j in (1..self.buckets_per_window as u64).rev() {
                            self.ring.push_back(Bucket::new(
                                Micros(self.cur_start.as_u64().saturating_sub(j * s)),
                                self.target,
                            ));
                        }
                        self.cur = Some(Bucket::new(self.cur_start, self.target));
                    }
                }
                self.accumulate(pkt, edge_gap);
            }
            WindowSpec::Count(stride) => {
                if self.cur.is_none() {
                    self.cur = Some(Bucket::new(pkt.timestamp, self.target));
                }
                self.accumulate(pkt, edge_gap);
                if self.cur.as_ref().map(|b| b.packets) == Some(stride) {
                    self.close_current(out);
                }
            }
        }
    }

    /// End of stream: flush the sampler and close the partial bucket;
    /// a stream shorter than one full window still yields one
    /// (partial) window.
    pub fn finish(&mut self) -> Vec<WindowPayload> {
        let mut out = Vec::new();
        if self.cur.is_some() {
            self.close_current(&mut out);
            self.cur = None;
        }
        if out.is_empty() && self.emitted == 0 && self.ring.iter().any(|b| b.packets > 0) {
            out.push(self.merge_window(self.ring.len()));
        }
        out
    }

    /// Feed one packet into the current bucket and the sampler.
    fn accumulate(&mut self, pkt: &PacketRecord, edge_gap: Option<u64>) {
        let cur = self.cur.as_mut().expect("current bucket");
        let bucket_first = cur.packets == 0;
        // Within a bucket the stream predecessor is the window-local
        // predecessor; a bucket's first packet has no local gap (the
        // batch semantics for a window's first packet).
        let local_gap = if bucket_first { None } else { edge_gap };
        let verdict = self.sampler.offer(pkt, local_gap);
        if verdict == Offer::Selected {
            cur.selected += 1;
            self.selected_total += 1;
        }
        let weight = self.target.weight(pkt);
        if let Some(v) = self.target.value(pkt, local_gap) {
            cur.population.observe_weighted(v, weight);
            if verdict == Offer::Selected {
                cur.sample.observe_weighted(v, weight);
            }
        } else if bucket_first {
            // Interarrival target, bucket seam: keep the cross-bucket
            // observation for merges where the predecessor is in-window.
            cur.pop_edge = self.target.value(pkt, edge_gap).map(|v| (v, weight));
            if verdict == Offer::Selected {
                cur.sam_edge = cur.pop_edge;
            }
        }
        cur.flows.offer(pkt);
        if verdict == Offer::Selected {
            cur.sampled.offer(pkt);
        }
        cur.packets += 1;
        if cur.first_ts.is_none() {
            cur.first_ts = Some(pkt.timestamp);
        }
        cur.last_ts = Some(pkt.timestamp);
        self.prev_ts = Some(pkt.timestamp);
        self.packets_total += 1;
    }

    /// Complete the current bucket: drain any buffered sampler
    /// selections into it, rotate it into the ring, and emit a window
    /// if one is now complete (fully-empty windows are skipped). The
    /// eviction keeps the ring bounded at `buckets_per_window`.
    fn close_current(&mut self, out: &mut Vec<WindowPayload>) {
        let mut bucket = self.cur.take().expect("current bucket");
        for item in self.sampler.flush() {
            bucket.selected += 1;
            self.selected_total += 1;
            if let Some(v) = self.target.value(&item.packet, item.gap_us) {
                bucket
                    .sample
                    .observe_weighted(v, self.target.weight(&item.packet));
            }
            bucket.sampled.offer(&item.packet);
        }
        self.ring.push_back(bucket);
        if self.ring.len() == self.buckets_per_window {
            if self.ring.iter().any(|b| b.packets > 0) {
                let payload = self.merge_window(self.buckets_per_window);
                out.push(payload);
            }
            self.ring.pop_front();
        }
    }

    /// Merge the first `n` ring buckets into one window payload.
    fn merge_window(&mut self, n: usize) -> WindowPayload {
        // The front bucket never serves another window — it is popped
        // (or the ring dropped) right after the merge — so steal its
        // flow table instead of re-inserting every record. Later
        // buckets slide into future windows and are merged by copy.
        let first = self.ring.front_mut().expect("nonempty ring");
        // Merge unbounded (pure hash-map folds), then enforce the
        // window budget once: keep the most-recently-updated flows.
        let mut flows = std::mem::replace(&mut first.flows, FlowTable::unbounded());
        let mut sampled = std::mem::replace(&mut first.sampled, FlowTable::unbounded());
        let mut population = first.population.clone();
        let mut sample = first.sample.clone();
        let mut packets = first.packets;
        let mut selected = first.selected;
        let mut first_ts = first.first_ts;
        let mut last_ts = first.last_ts;
        // Whether an earlier bucket of this window holds packets — iff
        // so, a later bucket's first packet has an in-window
        // predecessor and its seam observation applies.
        let mut seen_packets = packets > 0;
        for b in self.ring.iter().take(n).skip(1) {
            population.merge(&b.population);
            sample.merge(&b.sample);
            if seen_packets {
                if let Some((v, w)) = b.pop_edge {
                    population.observe_weighted(v, w);
                }
                if let Some((v, w)) = b.sam_edge {
                    sample.observe_weighted(v, w);
                }
            }
            flows.merge(&b.flows);
            sampled.merge(&b.sampled);
            packets += b.packets;
            selected += b.selected;
            if first_ts.is_none() {
                first_ts = b.first_ts;
            }
            if b.last_ts.is_some() {
                last_ts = b.last_ts;
            }
            seen_packets = seen_packets || b.packets > 0;
        }
        let budget = self
            .flow_budget
            .unwrap_or_else(|| BUCKET_FLOW_CAP.saturating_mul(self.buckets_per_window));
        let before = flows.len() as u64;
        flows.truncate_lru(budget);
        sampled.truncate_lru(budget);
        let index = self.next_index;
        self.next_index += 1;
        self.emitted += 1;
        WindowPayload {
            index,
            start_ts: self.ring.front().expect("nonempty ring").start_ts,
            first_ts,
            last_ts,
            packets,
            selected,
            population,
            sample,
            flows: flows.len() as u64,
            syn_flows: flows.syn_flows(),
            evicted_flows: before - flows.len() as u64,
            sampled_sizes: sampled.sizes(),
            sampled_syn_flows: sampled.syn_flows(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::StreamMethod;
    use sampling::MethodSpec;

    fn packets(n: u64, gap_us: u64) -> Vec<PacketRecord> {
        (0..n)
            .map(|i| PacketRecord::new(Micros(i * gap_us), if i % 2 == 0 { 40 } else { 552 }))
            .collect()
    }

    fn windower(target: Target, window: WindowSpec, slide: Option<WindowSpec>) -> Windower {
        let sampler = StreamMethod::Spec(MethodSpec::Systematic { interval: 5 })
            .build(Micros(0), None, 0, 1993)
            .unwrap();
        Windower::new(target, window, slide, sampler)
    }

    /// Batch-path reference: the histograms an `Experiment` would build
    /// over this window slice with this selection.
    fn batch_hists(
        target: Target,
        window: &[PacketRecord],
        selected: &[usize],
    ) -> (Histogram, Histogram) {
        (
            target.population_histogram(window),
            target.sample_histogram(window, selected),
        )
    }

    #[test]
    fn parse_specs() {
        assert_eq!(WindowSpec::parse("1000"), Ok(WindowSpec::Count(1000)));
        assert_eq!(
            WindowSpec::parse("250ms"),
            Ok(WindowSpec::Time(Micros(250_000)))
        );
        assert_eq!(
            WindowSpec::parse("2s"),
            Ok(WindowSpec::Time(Micros(2_000_000)))
        );
        assert_eq!(
            WindowSpec::parse("15m"),
            Ok(WindowSpec::Time(Micros(900_000_000)))
        );
        assert_eq!(WindowSpec::parse("90us"), Ok(WindowSpec::Time(Micros(90))));
        assert!(WindowSpec::parse("0").is_err());
        assert!(WindowSpec::parse("10h").is_err());
        assert!(WindowSpec::parse("").is_err());
    }

    #[test]
    fn tumbling_count_windows_match_batch_slices() {
        let pkts = packets(250, 1_000);
        let mut w = windower(Target::Interarrival, WindowSpec::Count(100), None);
        let mut windows = Vec::new();
        for p in &pkts {
            windows.extend(w.offer(p));
        }
        windows.extend(w.finish());
        assert_eq!(windows.len(), 3); // 100 + 100 + 50 (partial tail)
        for (i, win) in windows.iter().enumerate() {
            let lo = i * 100;
            let hi = (lo + 100).min(250);
            let slice = &pkts[lo..hi];
            // Reproduce the systematic sampler's in-window selections.
            let selected: Vec<usize> = (0..slice.len()).filter(|j| (lo + j) % 5 == 0).collect();
            let (pop, sam) = batch_hists(Target::Interarrival, slice, &selected);
            assert_eq!(win.population, pop, "window {i} population");
            assert_eq!(win.sample, sam, "window {i} sample");
            assert_eq!(win.packets, (hi - lo) as u64);
        }
    }

    #[test]
    fn sliding_count_windows_match_overlapping_batch_slices() {
        let pkts = packets(300, 700);
        for target in [Target::Interarrival, Target::PacketSize] {
            let mut w = windower(target, WindowSpec::Count(100), Some(WindowSpec::Count(25)));
            let mut windows = Vec::new();
            for p in &pkts {
                windows.extend(w.offer(p));
            }
            windows.extend(w.finish());
            // Windows end at packet 100, 125, …, 300: 9 of them.
            assert_eq!(windows.len(), 9, "{target}");
            for (i, win) in windows.iter().enumerate() {
                let hi = 100 + i * 25;
                let lo = hi - 100;
                let slice = &pkts[lo..hi];
                let selected: Vec<usize> = (0..slice.len()).filter(|j| (lo + j) % 5 == 0).collect();
                let (pop, sam) = batch_hists(target, slice, &selected);
                assert_eq!(win.population, pop, "{target} window {i} population");
                assert_eq!(win.sample, sam, "{target} window {i} sample");
            }
        }
    }

    #[test]
    fn time_windows_tumble_on_the_grid() {
        // 1 packet per ms, 10 ms windows anchored at the first packet.
        let pkts = packets(100, 1_000);
        let mut w = windower(Target::PacketSize, WindowSpec::Time(Micros(10_000)), None);
        let mut windows = Vec::new();
        for p in &pkts {
            windows.extend(w.offer(p));
        }
        windows.extend(w.finish());
        assert_eq!(windows.len(), 10);
        for (i, win) in windows.iter().enumerate() {
            assert_eq!(win.packets, 10, "window {i}");
            assert_eq!(win.start_ts, Micros(i as u64 * 10_000));
        }
    }

    #[test]
    fn long_idle_gaps_skip_empty_windows_in_bounded_work() {
        let mut w = windower(Target::PacketSize, WindowSpec::Time(Micros(1_000)), None);
        let mut windows = Vec::new();
        windows.extend(w.offer(&PacketRecord::new(Micros(0), 40)));
        // A ~12-day silence: 10^12 µs = 10^9 empty windows, skipped in
        // O(buckets_per_window) work.
        windows.extend(w.offer(&PacketRecord::new(Micros(1_000_000_000_000), 40)));
        windows.extend(w.finish());
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].packets, 1);
        assert_eq!(windows[1].packets, 1);
        assert_eq!(windows[1].start_ts, Micros(1_000_000_000_000));
    }

    #[test]
    fn sliding_time_windows_overlap() {
        // Packet every 1 ms; window 4 ms sliding by 2 ms.
        let pkts = packets(20, 1_000);
        let mut w = windower(
            Target::PacketSize,
            WindowSpec::Time(Micros(4_000)),
            Some(WindowSpec::Time(Micros(2_000))),
        );
        let mut windows = Vec::new();
        for p in &pkts {
            windows.extend(w.offer(p));
        }
        windows.extend(w.finish());
        for win in &windows {
            assert!(win.packets >= 2, "overlapping windows each hold packets");
        }
        // Consecutive windows advance by the slide, not the window.
        for pair in windows.windows(2) {
            assert_eq!(pair[1].start_ts.as_u64() - pair[0].start_ts.as_u64(), 2_000);
        }
    }

    #[test]
    fn short_stream_still_reports_one_window() {
        let pkts = packets(7, 1_000);
        let mut w = windower(Target::PacketSize, WindowSpec::Count(100), None);
        let mut windows = Vec::new();
        for p in &pkts {
            windows.extend(w.offer(p));
        }
        windows.extend(w.finish());
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].packets, 7);
        assert_eq!(windows[0].selected, 2); // indices 0 and 5
    }

    #[test]
    fn windows_count_flows_and_syn_starts() {
        // 3 interleaved flows of 40 packets each; flow f's first packet
        // is SYN-marked and lands in the first window.
        let pkts: Vec<PacketRecord> = (0..120u64)
            .map(|i| {
                let flow = (i % 3) as u32 + 1;
                PacketRecord::new(Micros(i * 1_000), 552).with_flow(flow, i < 3)
            })
            .collect();
        let mut w = windower(Target::PacketSize, WindowSpec::Count(60), None);
        let mut windows = Vec::new();
        for p in &pkts {
            windows.extend(w.offer(p));
        }
        windows.extend(w.finish());
        assert_eq!(windows.len(), 2);
        assert_eq!((windows[0].flows, windows[0].syn_flows), (3, 3));
        // Continuing flows appear again but did not *start* here.
        assert_eq!((windows[1].flows, windows[1].syn_flows), (3, 0));

        // Matches the batch reference: a FlowTable over the same slice.
        let batch = nettrace::FlowTable::from_packets(usize::MAX, &pkts[..60]);
        assert_eq!(windows[0].flows, batch.len() as u64);
        assert_eq!(windows[0].syn_flows, batch.syn_flows());

        // Flow-id-free packets group by 5-tuple instead.
        let plain = packets(10, 1_000);
        let mut w = windower(Target::PacketSize, WindowSpec::Count(10), None);
        let mut windows = Vec::new();
        for p in &plain {
            windows.extend(w.offer(p));
        }
        windows.extend(w.finish());
        assert_eq!(windows[0].flows, 1, "identical 5-tuples are one flow");
        assert_eq!(windows[0].syn_flows, 0);
    }

    #[test]
    fn sliding_windows_report_overlapping_flows() {
        // Flow 1 spans packets 0..50, flow 2 spans 50..100; window 100
        // sliding by 50 sees both in the overlapping window.
        let pkts: Vec<PacketRecord> = (0..100u64)
            .map(|i| {
                let flow = if i < 50 { 1 } else { 2 };
                PacketRecord::new(Micros(i * 1_000), 40).with_flow(flow, i == 0 || i == 50)
            })
            .collect();
        let mut w = windower(
            Target::PacketSize,
            WindowSpec::Count(100),
            Some(WindowSpec::Count(50)),
        );
        let mut windows = Vec::new();
        for p in &pkts {
            windows.extend(w.offer(p));
        }
        windows.extend(w.finish());
        assert_eq!(windows[0].flows, 2);
        assert_eq!(windows[0].syn_flows, 2);
    }

    /// The flow budget moved from the per-packet path to the window
    /// merge; per-window flow accounting must not have changed. Pinned
    /// against the pre-refactor values and the unbounded batch
    /// reference.
    #[test]
    fn merge_time_flow_budget_reports_the_same_windows() {
        // Many flows, heavily interleaved, SYNs scattered across both
        // windows — every packet advances its flow's last-seen time,
        // which is exactly the case that paid the order-index churn.
        let pkts: Vec<PacketRecord> = (0..2_000u64)
            .map(|i| {
                let flow = (i % 97) as u32 + 1;
                PacketRecord::new(Micros(i * 500), 552).with_flow(flow, i < 97 || i == 1_500)
            })
            .collect();
        let mut w = windower(Target::PacketSize, WindowSpec::Count(1_000), None);
        let mut windows = Vec::new();
        for p in &pkts {
            windows.extend(w.offer(p));
        }
        windows.extend(w.finish());
        assert_eq!(windows.len(), 2);
        assert_eq!((windows[0].flows, windows[0].syn_flows), (97, 97));
        assert_eq!((windows[1].flows, windows[1].syn_flows), (97, 1));
        for (i, win) in windows.iter().enumerate() {
            let batch =
                nettrace::FlowTable::from_packets(usize::MAX, &pkts[i * 1_000..(i + 1) * 1_000]);
            assert_eq!(win.flows, batch.len() as u64, "window {i}");
            assert_eq!(win.syn_flows, batch.syn_flows(), "window {i}");
        }
    }

    /// Overflowing the flow budget still evicts — the bound moved to the
    /// merge, it did not disappear.
    #[test]
    fn flow_budget_is_still_enforced_at_the_merge() {
        let n = BUCKET_FLOW_CAP as u64 + 500;
        let pkts: Vec<PacketRecord> = (0..n)
            .map(|i| PacketRecord::new(Micros(i * 10), 40).with_flow(i as u32 + 1, true))
            .collect();
        let mut w = windower(Target::PacketSize, WindowSpec::Count(n), None);
        let mut windows = Vec::new();
        for p in &pkts {
            windows.extend(w.offer(p));
        }
        windows.extend(w.finish());
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].packets, n);
        assert_eq!(windows[0].flows, BUCKET_FLOW_CAP as u64);
    }

    /// `offer_slice` is the left fold of `offer`: same windows, same
    /// histograms, same flow counts, for tumbling and sliding shapes and
    /// for any chunking of the stream.
    #[test]
    fn offer_slice_matches_per_packet_offers() {
        let pkts: Vec<PacketRecord> = (0..500u64)
            .map(|i| {
                PacketRecord::new(Micros(i * 900), if i % 2 == 0 { 40 } else { 552 })
                    .with_flow((i % 7) as u32 + 1, i < 7)
            })
            .collect();
        for (window, slide) in [
            (WindowSpec::Count(120), None),
            (WindowSpec::Count(120), Some(WindowSpec::Count(30))),
            (WindowSpec::Time(Micros(50_000)), None),
        ] {
            let mut per_packet = windower(Target::Interarrival, window, slide);
            let mut reference = Vec::new();
            for p in &pkts {
                reference.extend(per_packet.offer(p));
            }
            reference.extend(per_packet.finish());

            for chunk in [1usize, 17, 120, 500] {
                let mut sliced = windower(Target::Interarrival, window, slide);
                let mut got = Vec::new();
                for c in pkts.chunks(chunk) {
                    got.extend(sliced.offer_slice(c));
                }
                got.extend(sliced.finish());
                assert_eq!(got.len(), reference.len(), "chunk {chunk}");
                for (a, b) in got.iter().zip(&reference) {
                    assert_eq!(a.population, b.population, "chunk {chunk}");
                    assert_eq!(a.sample, b.sample, "chunk {chunk}");
                    assert_eq!(
                        (a.packets, a.selected, a.flows, a.syn_flows),
                        (b.packets, b.selected, b.flows, b.syn_flows),
                        "chunk {chunk}"
                    );
                }
            }
        }
    }

    /// The sampled flow table is exactly the flows of the selected
    /// packets: what a collector downstream of the 1-in-k tap would
    /// aggregate, and the input the inversion estimators expect.
    #[test]
    fn sampled_flow_sizes_follow_the_selected_packets() {
        // 1-in-5 systematic over 4 interleaved flows: selected indices
        // 0,5,10,…,95 cycle through the flows (gcd(4,5)=1), 5 hits each.
        let pkts: Vec<PacketRecord> = (0..100u64)
            .map(|i| PacketRecord::new(Micros(i * 1_000), 552).with_flow((i % 4) as u32 + 1, i < 4))
            .collect();
        let mut w = windower(Target::PacketSize, WindowSpec::Count(100), None);
        let mut windows = Vec::new();
        for p in &pkts {
            windows.extend(w.offer(p));
        }
        windows.extend(w.finish());
        assert_eq!(windows.len(), 1);
        let win = &windows[0];
        assert_eq!(win.flows, 4);
        assert_eq!(win.sampled_sizes, vec![5, 5, 5, 5]);
        // Only flow 1's SYN (index 0) landed on the selection grid.
        assert_eq!(win.sampled_syn_flows, 1);
        assert_eq!(win.evicted_flows, 0);
    }

    /// A per-window flow budget override bounds both tables and reports
    /// its evictions; `live_flows` tracks the open bucket.
    #[test]
    fn flow_budget_override_bounds_and_reports_evictions() {
        let pkts: Vec<PacketRecord> = (0..100u64)
            .map(|i| PacketRecord::new(Micros(i * 10), 40).with_flow(i as u32 + 1, true))
            .collect();
        let sampler = StreamMethod::Spec(MethodSpec::Systematic { interval: 5 })
            .build(Micros(0), None, 0, 1993)
            .unwrap();
        let mut w = Windower::new(Target::PacketSize, WindowSpec::Count(100), None, sampler)
            .with_flow_budget(30);
        let mut windows = Vec::new();
        for (i, p) in pkts.iter().enumerate() {
            if i == 50 {
                assert_eq!(w.live_flows(), 50, "open bucket holds one flow per packet");
            }
            windows.extend(w.offer(p));
        }
        windows.extend(w.finish());
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].flows, 30);
        assert_eq!(windows[0].evicted_flows, 70);
        assert!(windows[0].sampled_sizes.len() <= 30);
        assert_eq!(w.live_flows(), 0, "closed windows release their flows");
    }

    #[test]
    fn reservoir_selections_arrive_at_window_flush() {
        let pkts = packets(100, 1_000);
        let sampler = StreamMethod::Reservoir { capacity: 10 }
            .build(Micros(0), None, 0, 1993)
            .unwrap();
        let mut w = Windower::new(Target::PacketSize, WindowSpec::Count(50), None, sampler);
        let mut windows = Vec::new();
        for p in &pkts {
            windows.extend(w.offer(p));
        }
        windows.extend(w.finish());
        assert_eq!(windows.len(), 2);
        for win in &windows {
            assert_eq!(win.selected, 10, "reservoir yields exactly capacity");
            assert_eq!(win.sample.total(), 10);
            // Buffered selections land in the sampled flow table at the
            // flush; id-free packets collapse to one 5-tuple flow.
            assert_eq!(win.sampled_sizes.iter().sum::<u64>(), 10);
        }
        assert_eq!(w.selected(), 20);
    }
}
