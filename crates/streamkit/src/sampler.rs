//! Online samplers: stream adapters for the event-driven methods and a
//! one-pass reservoir (Vitter's Algorithm L) for simple random
//! sampling without a-priori `N`.

use nettrace::{Micros, PacketRecord};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sampling::{BuildError, MethodSpec, Sampler};

/// A packet retained by a buffering sampler, carrying the window-local
/// interarrival gap it had when offered (the attribute the
/// interarrival target bins; `None` for a window's first packet).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleItem {
    /// The retained packet.
    pub packet: PacketRecord,
    /// Interarrival gap to its window-local predecessor, µs.
    pub gap_us: Option<u64>,
}

/// Verdict on one offered packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer {
    /// Selected into the sample, finally (event-driven methods decide
    /// at arrival, like the T3 firmware).
    Selected,
    /// Not in the sample, finally.
    Skipped,
    /// Tentatively held by a buffering sampler (reservoir); the final
    /// sample arrives via [`StreamSampler::flush`].
    Buffered,
}

/// A sampler that consumes an unbounded packet stream in O(1)/O(k)
/// memory. Packets must be offered in arrival order. `Send` is a
/// supertrait so a boxed stream sampler (inside a `Windower`) can move
/// into — or be shared behind a lock with — pool workers.
pub trait StreamSampler: Send {
    /// Offer one arriving packet with its window-local interarrival gap.
    fn offer(&mut self, pkt: &PacketRecord, gap_us: Option<u64>) -> Offer;

    /// Drain buffered selections (reservoir contents) and reset the
    /// buffer for the next window. Event-driven samplers return an
    /// empty vector — their selections were final at offer time.
    fn flush(&mut self) -> Vec<SampleItem>;

    /// Stable short name used on metrics labels.
    fn name(&self) -> &'static str;
}

/// Adapter: any event-driven [`sampling::Sampler`] is a stream sampler
/// whose decisions are final at offer time.
struct EventDriven {
    inner: Box<dyn Sampler>,
}

impl StreamSampler for EventDriven {
    fn offer(&mut self, pkt: &PacketRecord, _gap_us: Option<u64>) -> Offer {
        if self.inner.offer(pkt) {
            Offer::Selected
        } else {
            Offer::Skipped
        }
    }

    fn flush(&mut self) -> Vec<SampleItem> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        self.inner.method_name()
    }
}

/// One-pass uniform `k`-of-stream sampling: Vitter's **Algorithm L**
/// (*Random sampling with a gap distribution*, TOMS 1994 lineage).
///
/// Unlike the workspace's Algorithm R
/// ([`sampling::ReservoirSampler`], one RNG draw per arrival), L draws
/// geometric *skip counts*: O(k·(1 + log(N/k))) RNG work total, so a
/// 1-in-50-style monitor spends its per-packet budget on nothing but a
/// counter compare — the same budget argument the paper makes for
/// systematic sampling (§4).
///
/// Every prefix of the stream is sampled uniformly: after `n ≥ k`
/// offers each of the `n` packets is held with probability exactly
/// `k/n` (the distribution-equivalence test against
/// [`sampling::SimpleRandomSampler`] pins this empirically).
pub struct ReservoirStream {
    capacity: usize,
    rng: StdRng,
    buf: Vec<SampleItem>,
    seen: u64,
    /// Vitter's running `W`: the largest of `k` uniform draws to the
    /// power `1/k`, updated per replacement.
    w: f64,
    /// 1-based arrival index of the next replacement.
    next_replace: u64,
}

impl ReservoirStream {
    /// New reservoir holding at most `capacity` packets.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let w = Self::init_w(&mut rng, capacity);
        ReservoirStream {
            capacity,
            rng,
            buf: Vec::with_capacity(capacity),
            seen: 0,
            w,
            next_replace: u64::MAX,
        }
    }

    /// Packets offered since the last flush.
    #[must_use]
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Maximum held packets.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Packets currently held.
    #[must_use]
    pub fn held(&self) -> usize {
        self.buf.len()
    }

    /// A uniform draw on `(0, 1]` — the open lower end keeps `ln`
    /// finite.
    fn unit(rng: &mut StdRng) -> f64 {
        1.0 - rng.random::<f64>()
    }

    fn init_w(rng: &mut StdRng, capacity: usize) -> f64 {
        (Self::unit(rng).ln() / capacity as f64).exp()
    }

    /// Draw the geometric skip to the next replacement and advance the
    /// schedule. Degenerate `w` (underflow after astronomically many
    /// replacements) parks the schedule at `u64::MAX`: no further
    /// replacements, which is also where the true distribution is.
    fn schedule(&mut self) {
        if self.w <= 0.0 {
            self.next_replace = u64::MAX;
            return;
        }
        let denom = (1.0 - self.w).ln();
        let skip = if denom == 0.0 {
            // w rounded to 1.0: replacement every arrival.
            0.0
        } else {
            (Self::unit(&mut self.rng).ln() / denom).floor()
        };
        let skip = if skip.is_finite() && skip > 0.0 {
            skip.min(9.0e18) as u64
        } else {
            0
        };
        self.next_replace = self.seen.saturating_add(skip).saturating_add(1);
    }
}

impl StreamSampler for ReservoirStream {
    fn offer(&mut self, pkt: &PacketRecord, gap_us: Option<u64>) -> Offer {
        self.seen += 1;
        let item = SampleItem {
            packet: *pkt,
            gap_us,
        };
        if self.buf.len() < self.capacity {
            self.buf.push(item);
            if self.buf.len() == self.capacity {
                self.schedule();
            }
            return Offer::Buffered;
        }
        if self.seen == self.next_replace {
            let slot = self.rng.random_range(0..self.capacity as u64) as usize;
            self.buf[slot] = item;
            self.w *= (Self::unit(&mut self.rng).ln() / self.capacity as f64).exp();
            self.schedule();
            return Offer::Buffered;
        }
        Offer::Skipped
    }

    fn flush(&mut self) -> Vec<SampleItem> {
        self.seen = 0;
        self.w = Self::init_w(&mut self.rng, self.capacity);
        self.next_replace = u64::MAX;
        std::mem::take(&mut self.buf)
    }

    fn name(&self) -> &'static str {
        "reservoir"
    }
}

/// How `netsample stream` selects packets: one of the event-driven
/// method specs, or one-pass reservoir selection (the streaming
/// replacement for simple random sampling, which needs `N` up front).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StreamMethod {
    /// An event-driven method built from its batch [`MethodSpec`].
    /// `SimpleRandom` additionally requires a population-size hint.
    Spec(MethodSpec),
    /// One-pass reservoir: a uniform `capacity`-of-window sample.
    Reservoir {
        /// Packets held per window.
        capacity: usize,
    },
}

impl StreamMethod {
    /// Stable short name (matches the batch families where one exists).
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            StreamMethod::Spec(spec) => spec.to_string(),
            StreamMethod::Reservoir { capacity } => format!("reservoir(k={capacity})"),
        }
    }

    /// Whether selections are buffered until window flush.
    #[must_use]
    pub fn is_buffered(&self) -> bool {
        matches!(self, StreamMethod::Reservoir { .. })
    }

    /// Instantiate the sampler for a stream whose first packet arrives
    /// at `window_start` — the same construction, seed folding and
    /// replication phasing as the batch
    /// [`MethodSpec::try_build`], so a one-window stream reproduces the
    /// batch experiment bit for bit.
    ///
    /// `population_hint` stands in for the batch path's known window
    /// length; only `MethodSpec::SimpleRandom` consults it.
    ///
    /// # Errors
    /// The batch [`BuildError`]s, plus `EmptyPopulation` when simple
    /// random sampling is asked for without a hint.
    pub fn build(
        &self,
        window_start: Micros,
        population_hint: Option<usize>,
        replication: u64,
        seed: u64,
    ) -> Result<Box<dyn StreamSampler>, BuildError> {
        match *self {
            StreamMethod::Spec(spec) => {
                let inner = spec.try_build(
                    population_hint.unwrap_or(0),
                    window_start,
                    replication,
                    seed,
                )?;
                Ok(Box::new(EventDriven { inner }))
            }
            StreamMethod::Reservoir { capacity } => {
                if capacity == 0 {
                    return Err(BuildError::ZeroInterval);
                }
                // The batch experiment's seed protocol, verbatim.
                let seed = seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(replication);
                Ok(Box::new(ReservoirStream::new(capacity, seed)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(i: u64) -> PacketRecord {
        PacketRecord::new(Micros(i * 100), 40 + (i % 7) as u16)
    }

    #[test]
    fn reservoir_holds_exactly_capacity() {
        let mut r = ReservoirStream::new(10, 7);
        for i in 0..1000 {
            let verdict = r.offer(&pkt(i), Some(100));
            assert_ne!(verdict, Offer::Selected, "reservoir never final-selects");
            assert!(r.held() <= 10);
        }
        assert_eq!(r.seen(), 1000);
        let sample = r.flush();
        assert_eq!(sample.len(), 10);
        // Flush resets for the next window.
        assert_eq!(r.seen(), 0);
        assert_eq!(r.held(), 0);
    }

    #[test]
    fn short_stream_keeps_everything() {
        let mut r = ReservoirStream::new(50, 1);
        for i in 0..20 {
            assert_eq!(r.offer(&pkt(i), None), Offer::Buffered);
        }
        let sample = r.flush();
        assert_eq!(sample.len(), 20);
        let ids: Vec<u64> = sample.iter().map(|s| s.packet.timestamp.as_u64()).collect();
        assert_eq!(ids, (0..20).map(|i| i * 100).collect::<Vec<_>>());
    }

    #[test]
    fn reservoir_is_seed_deterministic() {
        let run = |seed| {
            let mut r = ReservoirStream::new(8, seed);
            for i in 0..500 {
                r.offer(&pkt(i), Some(100));
            }
            r.flush()
                .iter()
                .map(|s| s.packet.timestamp.as_u64())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn inclusion_is_uniform_across_the_stream() {
        // After N offers every index must be held with probability k/N:
        // compare first-half vs second-half inclusion mass over many
        // seeds. A with-replacement or recency-biased bug shows up as a
        // strong half imbalance.
        const N: u64 = 1000;
        const K: usize = 50;
        const TRIALS: u64 = 400;
        let mut halves = [0u64; 2];
        for seed in 0..TRIALS {
            let mut r = ReservoirStream::new(K, seed);
            for i in 0..N {
                r.offer(&pkt(i), None);
            }
            for item in r.flush() {
                let idx = item.packet.timestamp.as_u64() / 100;
                halves[(idx >= N / 2) as usize] += 1;
            }
        }
        let total = halves[0] + halves[1];
        assert_eq!(total, TRIALS * K as u64);
        let imbalance = (halves[0] as f64 - halves[1] as f64).abs() / total as f64;
        assert!(
            imbalance < 0.02,
            "halves {halves:?}: imbalance {imbalance:.4}"
        );
    }

    #[test]
    fn event_adapter_mirrors_batch_systematic() {
        let spec = MethodSpec::Systematic { interval: 5 };
        let mut stream = StreamMethod::Spec(spec)
            .build(Micros(0), None, 0, 1993)
            .unwrap();
        let mut batch = spec.build(100, Micros(0), 0, 1993);
        for i in 0..100 {
            let p = pkt(i);
            let want = batch.offer(&p);
            let got = stream.offer(&p, Some(100)) == Offer::Selected;
            assert_eq!(got, want, "packet {i}");
        }
        assert!(stream.flush().is_empty());
        assert_eq!(stream.name(), "systematic");
    }

    #[test]
    fn simple_random_needs_a_population_hint() {
        let m = StreamMethod::Spec(MethodSpec::SimpleRandom { fraction: 0.02 });
        assert!(matches!(
            m.build(Micros(0), None, 0, 1),
            Err(BuildError::EmptyPopulation)
        ));
        assert!(m.build(Micros(0), Some(1000), 0, 1).is_ok());
    }

    #[test]
    fn zero_capacity_reservoir_is_a_build_error() {
        let m = StreamMethod::Reservoir { capacity: 0 };
        assert!(m.build(Micros(0), None, 0, 1).is_err());
    }
}
