//! # streamkit — bounded-memory one-pass streaming engine
//!
//! Every other crate in this workspace analyzes a fully-materialized
//! [`Trace`](nettrace::Trace); memory scales with capture size and the
//! paper's simple-random method needs the population size `N` up front.
//! An operational monitor — the paper's own 1-in-50 NSFNET deployment
//! (§2), or the NetFlow-style sampled export it inspired — sees a
//! *stream*: packets arrive once, memory must stay bounded, and the
//! characterization (the 15-minute collection cycle) rolls over windows.
//!
//! `streamkit` is that monitor, std-only:
//!
//! * **chunked ingestion** — [`nettrace::CaptureStream`] yields bounded
//!   batches from any `Read` source (file or stdin), reusing the strict
//!   batch decoders so the parses cannot drift;
//! * **online samplers** — [`StreamSampler`] adapts every event-driven
//!   [`sampling::Sampler`] to the stream, and [`ReservoirStream`]
//!   (Vitter's Algorithm L) delivers simple random sampling in one pass
//!   *without* knowing `N`;
//! * **windowed characterization** — [`Windower`] maintains tumbling or
//!   sliding windows over packet count or time, each carrying the
//!   paper's size/interarrival histograms, and emits a per-window φ
//!   against the window's own population or a fixed reference;
//! * **pipeline runtime** — [`run_stream`] wires source → sampler →
//!   scorer → sink over bounded channels with explicit backpressure
//!   (block, or drop-with-counter), obskit counters and spans per
//!   stage, and parkit-scored windows whose merged output is
//!   bit-identical to the serial run.
//!
//! The streaming path reproduces the batch
//! [`Experiment`](sampling::Experiment) exactly: one tumbling window
//! over a whole capture yields bit-identical φ for every packet-driven
//! method (the equivalence suite in `tests/` pins this).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod pipeline;
pub mod sampler;
pub mod window;

pub use engine::{run_stream, StreamConfig, StreamError, StreamSummary, WindowReport};
pub use pipeline::Backpressure;
pub use sampler::{Offer, ReservoirStream, SampleItem, StreamMethod, StreamSampler};
pub use window::{WindowPayload, WindowSpec, Windower};
