//! Configuration, validation, and the one-call entry point.
//!
//! [`run_stream`] validates a [`StreamConfig`], opens a
//! [`CaptureStream`] over any `Read` source, and drives the staged
//! pipeline to a [`StreamSummary`]. All configuration errors surface
//! *before* the first packet is read; a mid-stream decode fault
//! surfaces as [`StreamError::Ingest`] with the byte offset of the
//! broken structure, mirroring the salvage reader's reporting.

use crate::pipeline::{run_pipeline, Backpressure, PipelineParams};
use crate::sampler::StreamMethod;
use crate::window::{WindowSpec, Windower};
use nettrace::{CaptureStream, Histogram, Micros, TraceError};
use sampling::{BuildError, DisparityReport, MethodSpec, Target};
use std::io::Read;

/// Everything `netsample stream` needs to run: the sampling method,
/// characterization target, window geometry, and runtime knobs.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Sampling method (event-driven spec or one-pass reservoir).
    pub method: StreamMethod,
    /// Characterization target for the per-window histograms.
    pub target: Target,
    /// Window extent (packets or time).
    pub window: WindowSpec,
    /// Slide stride; `None` tumbles. Must divide `window` and share
    /// its kind.
    pub slide: Option<WindowSpec>,
    /// Replication index: folded into seeds/offsets exactly like the
    /// batch `Experiment`, so stream run `r` reproduces batch run `r`.
    pub replication: u64,
    /// Base random seed.
    pub seed: u64,
    /// Known population size per window, required only by the paper's
    /// simple-random method (which draws exactly `n` of `N`). The
    /// reservoir method needs no hint.
    pub population_hint: Option<usize>,
    /// Packets per ingestion batch.
    pub batch: usize,
    /// Bounded channel depth, in batches (and scored windows).
    pub queue: usize,
    /// Policy when the ingestion queue is full.
    pub backpressure: Backpressure,
    /// Worker threads for window scoring (bit-identical at any level).
    pub jobs: usize,
    /// Score each window against this fixed reference instead of the
    /// window's own population. Bins must match the target's.
    pub reference: Option<Histogram>,
    /// Name of an alert rule (in obskit's global rule engine) that
    /// drives **adaptive shedding**: while `alert_active{rule=<name>}`
    /// is 1, the source stage widens its drop-newest shedding —
    /// `Block` escalates to drop-newest instead of stalling, and
    /// batches shed proactively at half queue occupancy. `None` keeps
    /// the static policy.
    pub adaptive_shed: Option<String>,
}

impl StreamConfig {
    /// A config with the defaults the CLI uses: tumbling, replication
    /// 0, seed 1993, 512-packet batches, queue depth 4, blocking
    /// backpressure, serial scoring.
    #[must_use]
    pub fn new(method: StreamMethod, target: Target, window: WindowSpec) -> Self {
        StreamConfig {
            method,
            target,
            window,
            slide: None,
            replication: 0,
            seed: 1993,
            population_hint: None,
            batch: 512,
            queue: 4,
            backpressure: Backpressure::Block,
            jobs: 1,
            reference: None,
            adaptive_shed: None,
        }
    }
}

/// Why a stream run could not start or finish.
#[derive(Debug)]
pub enum StreamError {
    /// Invalid configuration (bad window geometry, missing population
    /// hint, mismatched reference bins). A usage error for the CLI.
    Config(String),
    /// The sampling method itself is degenerate (zero interval, …).
    Build(BuildError),
    /// The capture stream failed mid-read; `offset` is the byte
    /// position of the broken structure.
    Ingest {
        /// Byte offset of the structure that failed to decode.
        offset: u64,
        /// The underlying decode/I-O error.
        error: TraceError,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Config(msg) => write!(f, "{msg}"),
            StreamError::Build(e) => write!(f, "{e}"),
            StreamError::Ingest { offset, error } => {
                write!(f, "capture stream failed at byte {offset}: {error}")
            }
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Config(_) => None,
            StreamError::Build(e) => Some(e),
            StreamError::Ingest { error, .. } => Some(error),
        }
    }
}

impl From<BuildError> for StreamError {
    fn from(e: BuildError) -> Self {
        StreamError::Build(e)
    }
}

/// One scored window in the summary (and the JSONL sink).
#[derive(Debug, Clone, Copy)]
pub struct WindowReport {
    /// Emission sequence number.
    pub index: u64,
    /// Window grid start.
    pub start_ts: Micros,
    /// First observed packet timestamp.
    pub first_ts: Option<Micros>,
    /// Last observed packet timestamp.
    pub last_ts: Option<Micros>,
    /// Packets in the window.
    pub packets: u64,
    /// Packets the sampler selected.
    pub selected: u64,
    /// Live flows observed in the window (bounded flow table; see
    /// `streamkit::window`).
    pub flows: u64,
    /// Window flows that carried a SYN (flows that began in-window).
    pub syn_flows: u64,
    /// Packets shed by backpressure across the run so far, sampled when
    /// this window was scored (cumulative, monotone across windows).
    pub shed_packets: u64,
    /// Queueing lag: wall time from window emission to scoring, µs.
    pub lag_us: u64,
    /// Process RSS in kB when this window's score chunk ran (0 when
    /// procfs is unavailable).
    pub rss_kb: u64,
    /// The window's disparity scores (`None` when the sample — or the
    /// reference — was empty).
    pub report: Option<DisparityReport>,
}

/// What one stream run produced.
#[derive(Debug, Clone)]
pub struct StreamSummary {
    /// Capture format the stream sniffed ("pcap" or "pcapng").
    pub format: &'static str,
    /// Human-readable method name.
    pub method: String,
    /// Characterization target.
    pub target: Target,
    /// Packets offered to the sampler (drops excluded).
    pub packets: u64,
    /// Packets selected across the whole stream.
    pub selected: u64,
    /// Batches shed by the `drop-newest` backpressure policy.
    pub dropped_batches: u64,
    /// Packets inside those shed batches.
    pub dropped_packets: u64,
    /// Every scored window, in emission order.
    pub windows: Vec<WindowReport>,
}

impl StreamSummary {
    /// Mean φ across windows that produced a score.
    #[must_use]
    pub fn mean_phi(&self) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0u64;
        for w in &self.windows {
            if let Some(r) = w.report {
                sum += r.phi;
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }
}

fn extent(spec: WindowSpec) -> (u64, bool) {
    match spec {
        WindowSpec::Count(n) => (n, false),
        WindowSpec::Time(t) => (t.as_u64(), true),
    }
}

/// Reject every bad configuration before the first byte is read.
fn validate(cfg: &StreamConfig) -> Result<(), StreamError> {
    let (w, w_is_time) = extent(cfg.window);
    if w == 0 {
        return Err(StreamError::Config("window must be positive".into()));
    }
    if let Some(slide) = cfg.slide {
        let (s, s_is_time) = extent(slide);
        if s == 0 {
            return Err(StreamError::Config("slide must be positive".into()));
        }
        if s_is_time != w_is_time {
            return Err(StreamError::Config(
                "window and slide must both be packet counts or both durations".into(),
            ));
        }
        if w % s != 0 {
            return Err(StreamError::Config(format!(
                "window ({}) must be a whole multiple of the slide ({})",
                cfg.window, slide
            )));
        }
        if cfg.method.is_buffered() {
            return Err(StreamError::Config(
                "reservoir sampling buffers selections until a window closes, so it needs \
                 tumbling windows; drop --slide or pick an event-driven method"
                    .into(),
            ));
        }
    }
    if matches!(
        cfg.method,
        StreamMethod::Spec(MethodSpec::SimpleRandom { .. })
    ) && cfg.population_hint.is_none()
    {
        return Err(StreamError::Config(
            "simple random sampling draws exactly n of N and needs the population size up \
             front; pass --population <n>, or use --method reservoir for one-pass exact-n \
             sampling without a hint"
                .into(),
        ));
    }
    if let Some(r) = &cfg.reference {
        if *r.spec() != cfg.target.bins() {
            return Err(StreamError::Config(
                "reference histogram bins do not match the target's bin spec".into(),
            ));
        }
    }
    if let Some(rule) = &cfg.adaptive_shed {
        if rule.is_empty() || !rule.bytes().all(|b| b.is_ascii_graphic()) {
            return Err(StreamError::Config(
                "adaptive-shed rule name must be nonempty graphic ASCII".into(),
            ));
        }
    }
    // Probe-build the sampler so degenerate methods fail here, not in
    // the transform thread. The real build differs only in its window
    // anchor, which cannot affect fallibility.
    cfg.method
        .build(Micros::ZERO, cfg.population_hint, cfg.replication, cfg.seed)?;
    Ok(())
}

/// Run the streaming pipeline over `reader` to completion.
///
/// Memory stays bounded by the window geometry and queue depth — the
/// capture is never materialized. One tumbling window spanning a whole
/// capture reproduces the batch `Experiment` φ bit-for-bit for every
/// packet-driven method.
///
/// # Errors
/// [`StreamError::Config`]/[`StreamError::Build`] before any byte is
/// read; [`StreamError::Ingest`] when the capture is malformed or
/// truncated, carrying the byte offset of the broken structure.
pub fn run_stream<R: Read + Send>(
    reader: R,
    cfg: &StreamConfig,
) -> Result<StreamSummary, StreamError> {
    validate(cfg)?;
    let stream =
        CaptureStream::new(reader).map_err(|error| StreamError::Ingest { offset: 0, error })?;
    let format = stream.format();
    let method = cfg.method;
    let target = cfg.target;
    let (window, slide) = (cfg.window, cfg.slide);
    let (replication, seed, hint) = (cfg.replication, cfg.seed, cfg.population_hint);
    let make = move |window_start: Micros| {
        let sampler = method
            .build(window_start, hint, replication, seed)
            .expect("method construction was validated before streaming");
        Windower::new(target, window, slide, sampler)
    };
    let params = PipelineParams {
        batch: cfg.batch,
        queue: cfg.queue,
        backpressure: cfg.backpressure,
        jobs: cfg.jobs,
        reference: cfg.reference.as_ref(),
        shed_rule: cfg.adaptive_shed.as_deref(),
    };
    let out = run_pipeline(stream, make, &params)
        .map_err(|(offset, error)| StreamError::Ingest { offset, error })?;
    Ok(StreamSummary {
        format,
        method: method.name(),
        target,
        packets: out.packets,
        selected: out.selected,
        dropped_batches: out.dropped_batches,
        dropped_packets: out.dropped_packets,
        windows: out.windows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::pcap::write_pcap;
    use nettrace::{PacketRecord, Trace};

    fn capture(n: u64) -> Vec<u8> {
        let packets: Vec<PacketRecord> = (0..n)
            .map(|i| PacketRecord::new(Micros(i * 1_000), 40 + (i % 8) as u16 * 100))
            .collect();
        let trace = Trace::from_unordered(packets);
        let mut buf = Vec::new();
        write_pcap(&mut buf, &trace).unwrap();
        buf
    }

    fn systematic(k: usize) -> StreamMethod {
        StreamMethod::Spec(MethodSpec::Systematic { interval: k })
    }

    #[test]
    fn tumbling_run_scores_every_window() {
        let bytes = capture(1_000);
        let cfg = StreamConfig::new(systematic(10), Target::PacketSize, WindowSpec::Count(200));
        let summary = run_stream(bytes.as_slice(), &cfg).unwrap();
        assert_eq!(summary.format, "pcap");
        assert_eq!(summary.packets, 1_000);
        assert_eq!(summary.selected, 100);
        assert_eq!(summary.windows.len(), 5);
        for w in &summary.windows {
            assert_eq!(w.packets, 200);
            assert_eq!(w.selected, 20);
            let r = w.report.expect("scored");
            assert!(r.phi.is_finite());
        }
        assert!(summary.mean_phi().is_some());
    }

    #[test]
    fn parallel_scoring_is_bit_identical_to_serial() {
        let bytes = capture(3_000);
        let mut cfg =
            StreamConfig::new(systematic(7), Target::Interarrival, WindowSpec::Count(100));
        let serial = run_stream(bytes.as_slice(), &cfg).unwrap();
        cfg.jobs = 4;
        let parallel = run_stream(bytes.as_slice(), &cfg).unwrap();
        assert_eq!(serial.windows.len(), parallel.windows.len());
        for (a, b) in serial.windows.iter().zip(&parallel.windows) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.packets, b.packets);
            match (a.report, b.report) {
                (Some(x), Some(y)) => assert_eq!(x.phi.to_bits(), y.phi.to_bits()),
                (None, None) => {}
                _ => panic!("score presence diverged"),
            }
        }
    }

    #[test]
    fn truncated_capture_reports_the_broken_byte_offset() {
        let mut bytes = capture(50);
        bytes.truncate(bytes.len() - 7);
        let cfg = StreamConfig::new(systematic(5), Target::PacketSize, WindowSpec::Count(10));
        match run_stream(bytes.as_slice(), &cfg) {
            Err(StreamError::Ingest { offset, error }) => {
                // The last record starts at 24 + 49·(16+28).
                assert_eq!(offset, 24 + 49 * 44);
                assert!(matches!(error, TraceError::TruncatedRecord { .. }));
            }
            other => panic!("expected ingest fault, got {other:?}"),
        }
    }

    #[test]
    fn empty_reader_is_a_header_fault_at_offset_zero() {
        let cfg = StreamConfig::new(systematic(5), Target::PacketSize, WindowSpec::Count(10));
        match run_stream(&[][..], &cfg) {
            Err(StreamError::Ingest { offset, .. }) => assert_eq!(offset, 0),
            other => panic!("expected ingest fault, got {other:?}"),
        }
    }

    #[test]
    fn config_errors_surface_before_reading() {
        let base = |method| StreamConfig::new(method, Target::PacketSize, WindowSpec::Count(10));

        let mut cfg = base(systematic(5));
        cfg.slide = Some(WindowSpec::Count(3));
        assert!(matches!(
            run_stream(&[][..], &cfg),
            Err(StreamError::Config(_))
        ));

        let mut cfg = base(systematic(5));
        cfg.slide = Some(WindowSpec::Time(Micros(1_000)));
        assert!(matches!(
            run_stream(&[][..], &cfg),
            Err(StreamError::Config(_))
        ));

        let cfg = base(StreamMethod::Spec(MethodSpec::SimpleRandom {
            fraction: 0.02,
        }));
        match run_stream(&[][..], &cfg) {
            Err(StreamError::Config(msg)) => assert!(msg.contains("reservoir"), "{msg}"),
            other => panic!("expected config error, got {other:?}"),
        }

        let mut cfg = base(StreamMethod::Reservoir { capacity: 8 });
        cfg.slide = Some(WindowSpec::Count(5));
        assert!(matches!(
            run_stream(&[][..], &cfg),
            Err(StreamError::Config(_))
        ));

        let cfg = base(systematic(0));
        assert!(matches!(
            run_stream(&[][..], &cfg),
            Err(StreamError::Build(BuildError::ZeroInterval))
        ));

        let mut cfg = base(systematic(5));
        cfg.reference = Some(Histogram::new(Target::Interarrival.bins()));
        assert!(matches!(
            run_stream(&[][..], &cfg),
            Err(StreamError::Config(_))
        ));

        let mut cfg = base(systematic(5));
        cfg.adaptive_shed = Some(String::new());
        match run_stream(&[][..], &cfg) {
            Err(StreamError::Config(msg)) => assert!(msg.contains("adaptive-shed"), "{msg}"),
            other => panic!("expected config error, got {other:?}"),
        }
    }

    #[test]
    fn reservoir_streams_without_a_population_hint() {
        let bytes = capture(500);
        let mut cfg = StreamConfig::new(
            StreamMethod::Reservoir { capacity: 20 },
            Target::PacketSize,
            WindowSpec::Count(100),
        );
        cfg.seed = 7;
        let summary = run_stream(bytes.as_slice(), &cfg).unwrap();
        assert_eq!(summary.windows.len(), 5);
        for w in &summary.windows {
            assert_eq!(w.selected, 20);
        }
        // Seed determinism end to end.
        let again = run_stream(bytes.as_slice(), &cfg).unwrap();
        for (a, b) in summary.windows.iter().zip(&again.windows) {
            assert_eq!(
                a.report.map(|r| r.phi.to_bits()),
                b.report.map(|r| r.phi.to_bits())
            );
        }
    }

    #[test]
    fn fixed_reference_scores_against_it() {
        let bytes = capture(400);
        let mut cfg = StreamConfig::new(systematic(5), Target::PacketSize, WindowSpec::Count(100));
        let own = run_stream(bytes.as_slice(), &cfg).unwrap();
        // Reference = the first window's population; later windows have
        // the same size mix here, so scores stay finite and present.
        let reference = {
            let packets: Vec<PacketRecord> = (0..100u64)
                .map(|i| PacketRecord::new(Micros(i * 1_000), 40 + (i % 8) as u16 * 100))
                .collect();
            Target::PacketSize.population_histogram(&packets)
        };
        cfg.reference = Some(reference);
        let refd = run_stream(bytes.as_slice(), &cfg).unwrap();
        assert_eq!(own.windows.len(), refd.windows.len());
        assert!(refd.windows.iter().all(|w| w.report.is_some()));
    }
}
