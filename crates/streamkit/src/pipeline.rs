//! The staged streaming runtime: source → sampler/windower → scorer.
//!
//! Three stages connected by **bounded** channels, so memory stays
//! O(queue × batch + window) no matter how large the capture is:
//!
//! ```text
//!   source thread          transform thread         main thread
//!   CaptureStream ──batches──▶ Windower ──windows──▶ scorer (parkit)
//! ```
//!
//! Backpressure at the ingestion edge is explicit policy: [`Block`]
//! (lossless; the reader stalls until the sampler catches up — the
//! right default for files) or [`DropNewest`] (a full queue sheds the
//! freshest batch and counts it — the live-capture stance, where the
//! kernel would drop anyway and an honest counter beats a silent
//! stall). Window scoring fans out over a [`parkit::Pool`]; outputs
//! are merged in window order, so any `--jobs` level is bit-identical
//! to serial.
//!
//! **Scrape-driven adaptive control**: when the engine names a shed
//! rule ([`crate::StreamConfig::adaptive_shed`]), the source stage
//! reads the on-board alert engine's `alert_active{rule=...}` gauge
//! each batch. While the alert fires, shedding *widens*: the `Block`
//! policy escalates to drop-newest instead of stalling the reader,
//! and batches are shed proactively once the queue passes half
//! occupancy (not only when it is full). Adaptive drops are counted
//! separately in `stream_adaptive_shed_total`. The control loop is
//! entirely on-board — rule evaluation happens on the telemetry tick,
//! no external scraper in the loop.
//!
//! [`Block`]: Backpressure::Block
//! [`DropNewest`]: Backpressure::DropNewest

use crate::engine::WindowReport;
use crate::window::{WindowPayload, Windower};
use nettrace::{CaptureStream, Histogram, Micros, PacketRecord, TraceError};
use parkit::Pool;
use std::io::Read;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// Policy when the ingestion queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backpressure {
    /// Stall the reader until the pipeline drains (lossless).
    #[default]
    Block,
    /// Drop the just-read batch and count it (lossy, never stalls).
    DropNewest,
}

impl std::fmt::Display for Backpressure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backpressure::Block => write!(f, "block"),
            Backpressure::DropNewest => write!(f, "drop-newest"),
        }
    }
}

/// Runtime knobs the engine resolves before launching the pipeline.
pub(crate) struct PipelineParams<'a> {
    pub batch: usize,
    pub queue: usize,
    pub backpressure: Backpressure,
    pub jobs: usize,
    pub reference: Option<&'a Histogram>,
    /// Alert rule whose `alert_active{rule=...}` gauge widens shedding
    /// while it fires (`None` = static backpressure policy).
    pub shed_rule: Option<&'a str>,
}

/// What the pipeline hands back to the engine.
pub(crate) struct PipelineOutput {
    pub packets: u64,
    pub selected: u64,
    pub dropped_batches: u64,
    pub dropped_packets: u64,
    pub windows: Vec<WindowReport>,
}

enum SourceMsg {
    Batch(Vec<PacketRecord>),
    Done {
        dropped_batches: u64,
        dropped_packets: u64,
    },
    Fault {
        offset: u64,
        error: TraceError,
    },
}

enum StageMsg {
    /// A completed window plus its emission instant, so the scorer can
    /// report queueing lag (`lag_us`) per window.
    Window(Box<WindowPayload>, Instant),
    Done {
        packets: u64,
        selected: u64,
        dropped_batches: u64,
        dropped_packets: u64,
    },
    Fault {
        offset: u64,
        error: TraceError,
    },
}

/// Live per-run telemetry shared across the three stages.
///
/// The obskit counters/gauges are flushed *per batch / per window*
/// (not at end of run) so a concurrent `/metrics` scrape sees them
/// move; `shed_packets` additionally keeps a run-local total so a
/// [`WindowReport`] can carry the shed count of *this* run even when
/// several runs share the process-wide registry.
struct LiveStats {
    packets: obskit::Counter,
    batches: obskit::Counter,
    shed_packets_total: obskit::Counter,
    shed_batches_total: obskit::Counter,
    stalls: obskit::Counter,
    depth_ingest: obskit::Gauge,
    depth_score: obskit::Gauge,
    windows_emitted: obskit::Counter,
    windows_scored: obskit::Counter,
    adaptive_shed: obskit::Counter,
    shed_packets: AtomicU64,
}

impl LiveStats {
    fn new() -> Arc<LiveStats> {
        obskit::global().describe(
            "stream_channel_depth",
            "Occupancy of the bounded inter-stage channels, by consuming stage.",
        );
        obskit::global().describe(
            "stream_shed_total",
            "Packets shed by the drop-newest backpressure policy.",
        );
        obskit::global().describe(
            "stream_adaptive_shed_total",
            "Packets shed because an adaptive-shed alert rule was firing.",
        );
        Arc::new(LiveStats {
            packets: obskit::counter("stream_packets_ingested_total"),
            batches: obskit::counter("stream_batches_ingested_total"),
            shed_packets_total: obskit::counter("stream_shed_total"),
            shed_batches_total: obskit::counter("stream_shed_batches_total"),
            stalls: obskit::counter("stream_backpressure_stalls_total"),
            depth_ingest: obskit::gauge_labeled("stream_channel_depth", &[("stage", "transform")]),
            depth_score: obskit::gauge_labeled("stream_channel_depth", &[("stage", "score")]),
            windows_emitted: obskit::counter("stream_windows_emitted_total"),
            windows_scored: obskit::counter("stream_windows_scored_total"),
            adaptive_shed: obskit::counter("stream_adaptive_shed_total"),
            shed_packets: AtomicU64::new(0),
        })
    }
}

enum SendOutcome {
    Sent,
    Dropped(u64),
    Closed,
}

/// Apply the backpressure policy to one batch send. Factored out so
/// the drop path is unit-testable without racing real threads.
fn send_with_policy(
    tx: &SyncSender<SourceMsg>,
    batch: Vec<PacketRecord>,
    policy: Backpressure,
) -> SendOutcome {
    match policy {
        Backpressure::Block => match tx.send(SourceMsg::Batch(batch)) {
            Ok(()) => SendOutcome::Sent,
            Err(_) => SendOutcome::Closed,
        },
        Backpressure::DropNewest => match tx.try_send(SourceMsg::Batch(batch)) {
            Ok(()) => SendOutcome::Sent,
            Err(TrySendError::Full(SourceMsg::Batch(b))) => SendOutcome::Dropped(b.len() as u64),
            Err(TrySendError::Full(_)) => unreachable!("only batches are try-sent"),
            Err(TrySendError::Disconnected(_)) => SendOutcome::Closed,
        },
    }
}

/// Like [`send_with_policy`] for the `Block` policy, but visible: a
/// full queue first counts a backpressure stall, then blocks.
fn send_blocking_counted(
    tx: &SyncSender<SourceMsg>,
    batch: Vec<PacketRecord>,
    stats: &LiveStats,
) -> SendOutcome {
    match tx.try_send(SourceMsg::Batch(batch)) {
        Ok(()) => SendOutcome::Sent,
        Err(TrySendError::Full(msg)) => {
            stats.stalls.inc();
            match tx.send(msg) {
                Ok(()) => SendOutcome::Sent,
                Err(_) => SendOutcome::Closed,
            }
        }
        Err(TrySendError::Disconnected(_)) => SendOutcome::Closed,
    }
}

/// Read batches off the capture stream until EOF, fault, or a closed
/// downstream. Ingest counters, the channel-depth gauge, and shed
/// counters are flushed per batch so a live scrape sees them move.
fn source_loop<R: Read>(
    mut stream: CaptureStream<R>,
    tx: SyncSender<SourceMsg>,
    batch: usize,
    queue: usize,
    policy: Backpressure,
    shed_rule: Option<&str>,
    stats: &LiveStats,
) {
    let _span = obskit::span_labeled("stream_stage", &[("stage", "source")]);
    // Resolve the adaptive-control gauge once; the alert engine flips
    // it on the telemetry tick, the hot loop only reads an atomic.
    let shed_gauge = shed_rule.map(|r| obskit::gauge_labeled("alert_active", &[("rule", r)]));
    // "Widened" shedding threshold: once the alert fires, shed at half
    // queue occupancy instead of waiting for a full queue.
    let hiwater = i64::try_from(queue / 2).unwrap_or(i64::MAX).max(1);
    let mut dropped_batches = 0u64;
    let mut dropped_packets = 0u64;
    loop {
        let mut buf = Vec::with_capacity(batch);
        match stream.next_batch(batch, &mut buf) {
            Ok(0) => {
                let _ = tx.send(SourceMsg::Done {
                    dropped_batches,
                    dropped_packets,
                });
                break;
            }
            Ok(n) => {
                stats.packets.add(n as u64);
                stats.batches.inc();
                obskit::telemetry::touch_ingest();
                // Inc the depth gauge *before* the send so the consumer's
                // dec never races it below zero.
                stats.depth_ingest.add(1);
                let firing = shed_gauge.as_ref().is_some_and(|g| g.get() >= 1);
                let outcome = if firing {
                    // Alert firing: widen shedding. Never stall (Block
                    // escalates to drop-newest) and shed proactively
                    // past the half-occupancy high-water mark.
                    if stats.depth_ingest.get() > hiwater {
                        SendOutcome::Dropped(buf.len() as u64)
                    } else {
                        send_with_policy(&tx, buf, Backpressure::DropNewest)
                    }
                } else {
                    match policy {
                        Backpressure::Block => send_blocking_counted(&tx, buf, stats),
                        Backpressure::DropNewest => send_with_policy(&tx, buf, policy),
                    }
                };
                match outcome {
                    SendOutcome::Sent => {}
                    SendOutcome::Dropped(shed) => {
                        stats.depth_ingest.add(-1);
                        dropped_batches += 1;
                        dropped_packets += shed;
                        stats.shed_batches_total.inc();
                        stats.shed_packets_total.add(shed);
                        stats.shed_packets.fetch_add(shed, Ordering::Relaxed);
                        if firing {
                            stats.adaptive_shed.add(shed);
                        }
                    }
                    SendOutcome::Closed => {
                        stats.depth_ingest.add(-1);
                        break;
                    }
                }
            }
            Err(error) => {
                let offset = stream
                    .fault_offset()
                    .unwrap_or_else(|| stream.byte_offset());
                let _ = tx.send(SourceMsg::Fault { offset, error });
                break;
            }
        }
    }
}

/// Drive the windower over incoming batches and forward completed
/// windows. The windower (and through it the sampler) is built lazily
/// at the first packet, whose timestamp anchors the sampling schedule
/// exactly like the batch path's `window_start`.
fn transform_loop<F>(
    rx: mpsc::Receiver<SourceMsg>,
    tx: SyncSender<StageMsg>,
    make_windower: F,
    stats: &LiveStats,
) where
    F: FnOnce(Micros) -> Windower,
{
    let _span = obskit::span_labeled("stream_stage", &[("stage", "transform")]);
    let mut make = Some(make_windower);
    let mut windower: Option<Windower> = None;
    let mut closed = false;
    let send_window = |payload: WindowPayload| {
        stats.windows_emitted.inc();
        stats.depth_score.add(1);
        let sent = tx
            .send(StageMsg::Window(Box::new(payload), Instant::now()))
            .is_ok();
        if !sent {
            stats.depth_score.add(-1);
        }
        sent
    };
    'messages: for msg in rx {
        match msg {
            SourceMsg::Batch(pkts) => {
                stats.depth_ingest.add(-1);
                let Some(first) = pkts.first() else { continue };
                if windower.is_none() {
                    windower = Some((make.take().expect("built once"))(first.timestamp));
                }
                let w = windower.as_mut().expect("windower");
                for payload in w.offer_slice(&pkts) {
                    if !send_window(payload) {
                        closed = true;
                        break 'messages;
                    }
                }
            }
            SourceMsg::Done {
                dropped_batches,
                dropped_packets,
            } => {
                let (packets, selected) = match windower.as_mut() {
                    Some(w) => {
                        for payload in w.finish() {
                            if !send_window(payload) {
                                closed = true;
                                break 'messages;
                            }
                        }
                        (w.packets(), w.selected())
                    }
                    None => (0, 0),
                };
                let _ = tx.send(StageMsg::Done {
                    packets,
                    selected,
                    dropped_batches,
                    dropped_packets,
                });
                break;
            }
            SourceMsg::Fault { offset, error } => {
                let _ = tx.send(StageMsg::Fault { offset, error });
                break;
            }
        }
    }
    let _ = closed;
}

fn score_one(
    p: &WindowPayload,
    reference: Option<&Histogram>,
    emitted_at: Instant,
    shed_packets: u64,
    rss_kb: u64,
) -> WindowReport {
    let popref = reference.unwrap_or(&p.population);
    let report = if popref.total() == 0 {
        None
    } else {
        sampling::disparity(popref, &p.sample)
    };
    WindowReport {
        index: p.index,
        start_ts: p.start_ts,
        first_ts: p.first_ts,
        last_ts: p.last_ts,
        packets: p.packets,
        selected: p.selected,
        flows: p.flows,
        syn_flows: p.syn_flows,
        shed_packets,
        lag_us: u64::try_from(emitted_at.elapsed().as_micros()).unwrap_or(u64::MAX),
        rss_kb,
        report,
    }
}

/// Score a chunk of pending windows on the pool. `Pool::run` places
/// outputs by task index, so report order — and every bit of every φ —
/// is identical at any worker count. Telemetry fields are sampled once
/// per chunk: shed count and RSS are per-run/process facts, not
/// per-window ones, and a chunk scores within a few milliseconds.
fn score_chunk(
    pool: &Pool,
    reference: Option<&Histogram>,
    pending: &mut Vec<(WindowPayload, Instant)>,
    reports: &mut Vec<WindowReport>,
    stats: &LiveStats,
) {
    if pending.is_empty() {
        return;
    }
    let _span = obskit::span_labeled("stream_stage", &[("stage", "score")]);
    let batch = std::mem::take(pending);
    let shed = stats.shed_packets.load(Ordering::Relaxed);
    let rss_kb = obskit::telemetry::rss_kb().unwrap_or(0);
    let scored = pool
        .run(batch.len(), |i| {
            let (payload, emitted_at) = &batch[i];
            score_one(payload, reference, *emitted_at, shed, rss_kb)
        })
        .unwrap_or_else(|e| panic!("window scoring failed: {e}"));
    stats.windows_scored.add(batch.len() as u64);
    reports.extend(scored);
}

/// Windows buffered before a scoring fan-out. Small enough to keep the
/// sink responsive, large enough to amortize pool dispatch.
const SCORE_CHUNK: usize = 64;

/// Run the full pipeline to completion.
pub(crate) fn run_pipeline<R, F>(
    stream: CaptureStream<R>,
    make_windower: F,
    params: &PipelineParams<'_>,
) -> Result<PipelineOutput, (u64, TraceError)>
where
    R: Read + Send,
    F: FnOnce(Micros) -> Windower + Send,
{
    let batch = params.batch.max(1);
    let queue = params.queue.max(1);
    let policy = params.backpressure;
    let pool = Pool::new(params.jobs.max(1));
    let stats = LiveStats::new();
    thread::scope(|s| {
        let (src_tx, src_rx) = mpsc::sync_channel::<SourceMsg>(queue);
        let (win_tx, win_rx) = mpsc::sync_channel::<StageMsg>(queue);
        let src_stats = Arc::clone(&stats);
        let tf_stats = Arc::clone(&stats);
        let shed_rule = params.shed_rule;
        s.spawn(move || source_loop(stream, src_tx, batch, queue, policy, shed_rule, &src_stats));
        s.spawn(move || transform_loop(src_rx, win_tx, make_windower, &tf_stats));

        let mut pending: Vec<(WindowPayload, Instant)> = Vec::new();
        let mut reports: Vec<WindowReport> = Vec::new();
        let mut outcome: Option<Result<PipelineOutput, (u64, TraceError)>> = None;
        while let Ok(msg) = win_rx.recv() {
            match msg {
                StageMsg::Window(p, emitted_at) => {
                    stats.depth_score.add(-1);
                    pending.push((*p, emitted_at));
                    if pending.len() >= SCORE_CHUNK {
                        score_chunk(&pool, params.reference, &mut pending, &mut reports, &stats);
                    }
                }
                StageMsg::Done {
                    packets,
                    selected,
                    dropped_batches,
                    dropped_packets,
                } => {
                    outcome = Some(Ok(PipelineOutput {
                        packets,
                        selected,
                        dropped_batches,
                        dropped_packets,
                        windows: Vec::new(),
                    }));
                    break;
                }
                StageMsg::Fault { offset, error } => {
                    outcome = Some(Err((offset, error)));
                    break;
                }
            }
        }
        score_chunk(&pool, params.reference, &mut pending, &mut reports, &stats);
        // A missing outcome means a stage panicked; the scope join
        // below re-raises that panic, so this expect never fires first.
        let mut outcome = outcome.expect("pipeline ended without a terminal message");
        if let Ok(out) = outcome.as_mut() {
            out.windows = reports;
        }
        outcome
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;

    fn batch_of(n: usize) -> Vec<PacketRecord> {
        (0..n)
            .map(|i| PacketRecord::new(Micros(i as u64 * 10), 40))
            .collect()
    }

    #[test]
    fn block_policy_never_drops_but_reports_closed_channels() {
        let (tx, rx) = sync_channel(1);
        assert!(matches!(
            send_with_policy(&tx, batch_of(3), Backpressure::Block),
            SendOutcome::Sent
        ));
        drop(rx);
        assert!(matches!(
            send_with_policy(&tx, batch_of(3), Backpressure::Block),
            SendOutcome::Closed
        ));
    }

    #[test]
    fn drop_newest_sheds_exactly_the_overflow_batch() {
        // Capacity 2, no receiver draining: the third send must drop,
        // deterministically, and report the dropped packet count.
        let (tx, _rx) = sync_channel(2);
        assert!(matches!(
            send_with_policy(&tx, batch_of(5), Backpressure::DropNewest),
            SendOutcome::Sent
        ));
        assert!(matches!(
            send_with_policy(&tx, batch_of(5), Backpressure::DropNewest),
            SendOutcome::Sent
        ));
        match send_with_policy(&tx, batch_of(7), Backpressure::DropNewest) {
            SendOutcome::Dropped(n) => assert_eq!(n, 7),
            _ => panic!("expected a drop"),
        }
    }

    #[test]
    fn drop_newest_reports_disconnect() {
        let (tx, rx) = sync_channel(2);
        drop(rx);
        assert!(matches!(
            send_with_policy(&tx, batch_of(1), Backpressure::DropNewest),
            SendOutcome::Closed
        ));
    }

    /// Drive `source_loop` against a deliberately slow consumer and
    /// return the `(stalls, shed_packets, adaptive_shed)` deltas this
    /// run contributed to the global counters.
    fn drive_source(policy: Backpressure, shed_rule: Option<&str>) -> (u64, u64, u64) {
        let stats = LiveStats::new();
        let stalls0 = stats.stalls.get();
        let shed0 = stats.shed_packets_total.get();
        let adaptive0 = stats.adaptive_shed.get();
        let bytes = {
            let packets: Vec<PacketRecord> = (0..60u64)
                .map(|i| PacketRecord::new(Micros(i * 10), 40))
                .collect();
            let trace = nettrace::Trace::from_unordered(packets);
            let mut buf = Vec::new();
            nettrace::pcap::write_pcap(&mut buf, &trace).unwrap();
            buf
        };
        let stream = CaptureStream::new(bytes.as_slice()).unwrap();
        let (tx, rx) = sync_channel::<SourceMsg>(2);
        let consumer = thread::spawn(move || {
            for msg in rx {
                if matches!(msg, SourceMsg::Batch(_)) {
                    stats_sleep();
                }
            }
        });
        source_loop(stream, tx, 1, 2, policy, shed_rule, &stats);
        consumer.join().unwrap();
        (
            stats.stalls.get() - stalls0,
            stats.shed_packets_total.get() - shed0,
            stats.adaptive_shed.get() - adaptive0,
        )
    }

    fn stats_sleep() {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    #[test]
    fn adaptive_shed_reduces_block_stalls_while_alert_fires() {
        // The control gauge the alert engine would normally flip.
        obskit::gauge_labeled("alert_active", &[("rule", "pipeline_test_hiwater")]).set(1);
        // Static Block path: 60 one-packet batches into a depth-2
        // queue drained at 2ms/batch must stall the reader repeatedly.
        let (stalls_static, _, adaptive_static) = drive_source(Backpressure::Block, None);
        assert!(stalls_static > 0, "static Block path must stall");
        assert_eq!(adaptive_static, 0, "no rule, no adaptive shedding");
        // Same load with the alert firing: Block escalates to
        // drop-newest, so the reader sheds instead of stalling.
        let (stalls_adaptive, shed, adaptive) =
            drive_source(Backpressure::Block, Some("pipeline_test_hiwater"));
        assert!(
            stalls_adaptive < stalls_static,
            "adaptive shed must reduce stalls ({stalls_adaptive} vs {stalls_static})"
        );
        assert!(adaptive > 0, "widened shedding must engage");
        assert!(shed >= adaptive, "adaptive drops are counted as shed too");
    }

    #[test]
    fn adaptive_shed_stays_inert_while_alert_is_clear() {
        obskit::gauge_labeled("alert_active", &[("rule", "pipeline_test_quiet")]).set(0);
        let (stalls, _, adaptive) = drive_source(Backpressure::Block, Some("pipeline_test_quiet"));
        assert!(stalls > 0, "clear alert keeps the static Block policy");
        assert_eq!(adaptive, 0, "no adaptive drops while the rule is clear");
    }
}
