//! Cross-check the telemetry self-sampling φ against the paper path.
//!
//! `obskit::series::fidelity_phi` re-implements the paired-χ² φ over
//! obskit's log₂ buckets (obskit sits below `sampling` in the crate
//! graph, so it cannot call `sampling::disparity` directly). This test
//! pins the two implementations to each other: the same series pushed
//! through `nettrace::Histogram` with explicit log₂ edges and scored
//! by `sampling::disparity` must produce the same φ, for every
//! systematic stride the self-check uses (k ∈ {2, 5, 10}).

use nettrace::{BinSpec, Histogram};

/// Log₂ bin edges matching obskit's histogram buckets: bin 0 = [0,2),
/// bin i = [2^i, 2^(i+1)), bin 63 = [2^63, ∞).
fn log2_edges() -> BinSpec {
    BinSpec::Edges((1..64).map(|i| 1u64 << i).collect())
}

fn synthetic_series(n: u64) -> Vec<f64> {
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut vals = Vec::with_capacity(n as usize);
    for i in 0..n {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        // Mix a wide log-range (bit-shifted LCG output) with a slow
        // drift so downsampling has structure to distort.
        let v = (state >> 52) + i % 97;
        vals.push(v as f64);
    }
    vals
}

#[test]
fn obskit_fidelity_phi_matches_sampling_disparity() {
    let vals = synthetic_series(500);
    for k in [2usize, 5, 10] {
        let phi_series = obskit::fidelity_phi(&vals, k).expect("phi defined");
        let mut pop = Histogram::new(log2_edges());
        let mut smp = Histogram::new(log2_edges());
        for v in &vals {
            pop.observe(*v as u64);
        }
        for v in vals.iter().step_by(k) {
            smp.observe(*v as u64);
        }
        let report = sampling::disparity(&pop, &smp).expect("disparity defined");
        assert!(
            (phi_series - report.phi).abs() < 1e-12,
            "k={k}: series phi {phi_series} != disparity phi {}",
            report.phi
        );
        assert!((0.0..=std::f64::consts::SQRT_2).contains(&phi_series));
    }
}

#[test]
fn crosscheck_holds_on_skewed_and_constant_series() {
    // Constant: φ must be exactly 0 on both paths.
    let flat = vec![1024.0; 200];
    let phi = obskit::fidelity_phi(&flat, 5).unwrap();
    let mut pop = Histogram::new(log2_edges());
    let mut smp = Histogram::new(log2_edges());
    for v in &flat {
        pop.observe(*v as u64);
    }
    for v in flat.iter().step_by(5) {
        smp.observe(*v as u64);
    }
    let report = sampling::disparity(&pop, &smp).unwrap();
    assert_eq!(phi, report.phi);
    assert!(phi.abs() < 1e-15);

    // Period-2 bimodal with k=2: the downsample sees one mode only;
    // both paths must agree on the (large) distortion.
    let mut bimodal = Vec::new();
    for i in 0..300u64 {
        bimodal.push(if i % 2 == 0 { 3.0 } else { 3.0e9 });
    }
    let phi = obskit::fidelity_phi(&bimodal, 2).unwrap();
    let mut pop = Histogram::new(log2_edges());
    let mut smp = Histogram::new(log2_edges());
    for v in &bimodal {
        pop.observe(*v as u64);
    }
    for v in bimodal.iter().step_by(2) {
        smp.observe(*v as u64);
    }
    let report = sampling::disparity(&pop, &smp).unwrap();
    assert!((phi - report.phi).abs() < 1e-12);
    assert!(phi > 0.5, "k=2 must visibly distort a period-2 series");
}
