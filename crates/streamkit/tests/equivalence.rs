//! Stream/batch equivalence: the acceptance bar for the streaming
//! engine.
//!
//! One tumbling window spanning a whole capture must reproduce the
//! batch [`Experiment`] path **bit-for-bit**: same selections, same
//! histograms, same φ down to the last f64 bit, for every packet-driven
//! method in the paper's set — serially and at `--jobs 4`. The
//! reservoir sampler has no batch twin (that is its point: no `N` up
//! front), so it is held to a *distributional* bar against the paper's
//! simple random method instead.

use nettrace::pcap::write_pcap;
use nettrace::read_capture;
use parkit::Pool;
use sampling::{Experiment, MethodSpec, Target};
use streamkit::{run_stream, StreamConfig, StreamMethod, WindowSpec};

/// A realistic ~10k-packet synthetic capture (24 s of the SDSC'93
/// profile: bursty rate, bimodal sizes, mixed protocols and ports).
fn capture_bytes() -> Vec<u8> {
    let mut profile = netsynth::TraceProfile::sdsc_1993();
    profile.duration_secs = 27;
    let trace = netsynth::generate(&profile, 0x1993);
    assert!(
        trace.len() > 9_000,
        "expected ~10k packets, got {}",
        trace.len()
    );
    let mut buf = Vec::new();
    write_pcap(&mut buf, &trace).unwrap();
    buf
}

/// φ bits from the batch `Experiment` path, replication 0.
fn batch_phi_bits(
    bytes: &[u8],
    method: MethodSpec,
    target: Target,
    seed: u64,
    jobs: usize,
) -> Option<u64> {
    let trace = read_capture(bytes).unwrap();
    let exp = Experiment::new(trace.packets(), target);
    let result = exp.run_with(&Pool::new(jobs), method, 1, seed);
    result.replications.first().map(|r| r.report.phi.to_bits())
}

/// φ bits from one whole-capture tumbling window through the stream.
fn stream_phi_bits(
    bytes: &[u8],
    method: MethodSpec,
    target: Target,
    seed: u64,
    jobs: usize,
    population: usize,
) -> Option<u64> {
    let mut cfg = StreamConfig::new(
        StreamMethod::Spec(method),
        target,
        WindowSpec::Count(population as u64),
    );
    cfg.seed = seed;
    cfg.jobs = jobs;
    cfg.population_hint = Some(population);
    let summary = run_stream(bytes, &cfg).unwrap();
    assert_eq!(summary.packets as usize, population);
    assert_eq!(summary.windows.len(), 1, "one window spans the capture");
    summary.windows[0].report.map(|r| r.phi.to_bits())
}

#[test]
fn paper_five_methods_match_batch_phi_bit_for_bit() {
    let bytes = capture_bytes();
    let trace = read_capture(bytes.as_slice()).unwrap();
    let population = trace.len();
    let mean_pps = Experiment::new(trace.packets(), Target::PacketSize).mean_pps();
    let seed = 424;

    for target in [
        Target::PacketSize,
        Target::Interarrival,
        Target::ByteVolume,
        Target::Protocol,
        Target::Port,
    ] {
        for method in MethodSpec::paper_five(50, mean_pps) {
            let batch = batch_phi_bits(&bytes, method, target, seed, 1);
            for jobs in [1, 4] {
                let stream = stream_phi_bits(&bytes, method, target, seed, jobs, population);
                assert_eq!(
                    stream, batch,
                    "{method} on {target} (jobs={jobs}): stream φ must be bit-identical"
                );
            }
            assert!(
                batch.is_some(),
                "{method} on {target}: batch produced a score"
            );
        }
    }
}

#[test]
fn windowed_stream_matches_batch_run_on_each_slice() {
    // Beyond the single-window bar: every tumbling window's φ equals a
    // batch Experiment run on exactly that packet slice.
    let bytes = capture_bytes();
    let trace = read_capture(bytes.as_slice()).unwrap();
    let window = 2_000usize;
    let method = MethodSpec::Systematic { interval: 50 };
    let target = Target::Interarrival;
    let seed = 7;

    let mut cfg = StreamConfig::new(
        StreamMethod::Spec(method),
        target,
        WindowSpec::Count(window as u64),
    );
    cfg.seed = seed;
    let summary = run_stream(bytes.as_slice(), &cfg).unwrap();

    let packets = trace.packets();
    let n_windows = packets.len().div_ceil(window);
    assert_eq!(summary.windows.len(), n_windows);
    for (i, win) in summary.windows.iter().enumerate() {
        let lo = i * window;
        let hi = (lo + window).min(packets.len());
        let exp = Experiment::new(&packets[lo..hi], target);
        let result = exp.run_with(&Pool::serial(), method, 1, seed);
        let batch_bits = result.replications.first().map(|r| r.report.phi.to_bits());
        let stream_bits = win.report.map(|r| r.phi.to_bits());
        // One systematic sampler spans the whole stream, but interval
        // 50 divides the 2000-packet window, so its phase at each
        // window boundary equals a fresh per-window schedule and the
        // two paths agree exactly.
        assert_eq!(stream_bits, batch_bits, "window {i}");
    }
}

#[test]
fn reservoir_is_distribution_equivalent_to_simple_random() {
    // The reservoir's one-pass exact-n draw must be *statistically*
    // indistinguishable from the paper's n-of-N simple random method:
    // equal-probability inclusion ⇒ the φ distribution over many seeds
    // has the same mean. 200 independent runs of each; the means must
    // agree within a few percent (φ's seed-to-seed σ is ~30% of its
    // mean, so the standard error of each mean is ~2%).
    let trace = netsynth::canonical::randomly_ordered(2_000, 99);
    let mut bytes = Vec::new();
    write_pcap(&mut bytes, &trace).unwrap();
    let k = 100usize;
    let runs = 200u64;

    let mut reservoir_sum = 0.0;
    let mut reservoir_n = 0u64;
    for seed in 0..runs {
        let mut cfg = StreamConfig::new(
            StreamMethod::Reservoir { capacity: k },
            Target::PacketSize,
            WindowSpec::Count(2_000),
        );
        cfg.seed = seed;
        let summary = run_stream(bytes.as_slice(), &cfg).unwrap();
        if let Some(phi) = summary.mean_phi() {
            reservoir_sum += phi;
            reservoir_n += 1;
        }
    }

    let exp = Experiment::new(trace.packets(), Target::PacketSize);
    let method = MethodSpec::SimpleRandom {
        fraction: k as f64 / 2_000.0,
    };
    let result = exp.run_with(&Pool::serial(), method, runs as u32, 5_551);
    let random_mean = result.mean_phi().unwrap();
    let reservoir_mean = reservoir_sum / reservoir_n as f64;

    assert!(reservoir_n >= runs - 2, "almost every run scores");
    let rel = (reservoir_mean - random_mean).abs() / random_mean;
    assert!(
        rel < 0.10,
        "reservoir mean φ {reservoir_mean:.4} vs simple random {random_mean:.4} \
         (relative gap {rel:.3}) — distributions should agree"
    );
}

#[test]
fn hundred_thousand_packets_stream_in_bounded_windows() {
    // The O(window)-memory smoke: a 100k-packet capture through small
    // windows — nothing accumulates across windows, every one scores.
    let trace = netsynth::canonical::randomly_ordered(100_000, 3);
    let mut bytes = Vec::new();
    write_pcap(&mut bytes, &trace).unwrap();
    let mut cfg = StreamConfig::new(
        StreamMethod::Spec(MethodSpec::Systematic { interval: 50 }),
        Target::PacketSize,
        WindowSpec::Count(1_000),
    );
    cfg.jobs = 2;
    let summary = run_stream(bytes.as_slice(), &cfg).unwrap();
    assert_eq!(summary.packets, 100_000);
    assert_eq!(summary.windows.len(), 100);
    assert!(summary.windows.iter().all(|w| w.report.is_some()));
}
