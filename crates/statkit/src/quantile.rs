//! Exact quantiles of finite data sets.
//!
//! The paper's summary tables (Tables 2 and 3) report min/5%/25%/median/
//! 75%/95%/max. We use the linear-interpolation convention (R/S type 7,
//! the default of the S-Plus environment contemporaneous with the paper):
//! for probability `p` and `n` sorted points, `h = (n-1)p`, and the
//! quantile interpolates between the floor and ceiling order statistics.

/// Quantile of already-sorted data by linear interpolation (type 7).
///
/// # Panics
/// Panics if `sorted` is empty or `p` is outside `[0, 1]`.
#[must_use]
pub fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty data");
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = (n - 1) as f64 * p;
    let lo = h.floor() as usize;
    let frac = h - lo as f64;
    if lo + 1 >= n {
        return sorted[n - 1];
    }
    sorted[lo] + frac * (sorted[lo + 1] - sorted[lo])
}

/// Quantile of unsorted data (copies and sorts).
///
/// # Panics
/// Panics if `data` is empty or `p` is outside `[0, 1]`.
#[must_use]
pub fn quantile(data: &[f64], p: f64) -> f64 {
    let mut v = data.to_vec();
    v.sort_by(f64::total_cmp);
    quantile_sorted(&v, p)
}

/// Compute several quantiles of one data set with a single sort.
///
/// # Panics
/// Panics if `data` is empty or any probability is outside `[0, 1]`.
#[must_use]
pub fn quantiles(data: &[f64], ps: &[f64]) -> Vec<f64> {
    let mut v = data.to_vec();
    v.sort_by(f64::total_cmp);
    ps.iter().map(|&p| quantile_sorted(&v, p)).collect()
}

/// Median convenience wrapper.
///
/// # Panics
/// Panics if `data` is empty.
#[must_use]
pub fn median(data: &[f64]) -> f64 {
    quantile(data, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }

    #[test]
    fn single_element() {
        close(quantile(&[42.0], 0.0), 42.0);
        close(quantile(&[42.0], 0.5), 42.0);
        close(quantile(&[42.0], 1.0), 42.0);
    }

    #[test]
    fn extremes_are_min_max() {
        let d = [3.0, 1.0, 4.0, 1.0, 5.0];
        close(quantile(&d, 0.0), 1.0);
        close(quantile(&d, 1.0), 5.0);
    }

    #[test]
    fn median_even_odd() {
        close(median(&[1.0, 2.0, 3.0]), 2.0);
        close(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn type7_interpolation() {
        // R: quantile(c(1,2,3,4), 0.25) = 1.75 under type 7.
        close(quantile(&[1.0, 2.0, 3.0, 4.0], 0.25), 1.75);
        close(quantile(&[1.0, 2.0, 3.0, 4.0], 0.75), 3.25);
        // R: quantile(1:5, 0.1) = 1.4
        close(quantile(&[1.0, 2.0, 3.0, 4.0, 5.0], 0.1), 1.4);
    }

    #[test]
    fn unsorted_input_is_handled() {
        close(quantile(&[9.0, 1.0, 5.0], 0.5), 5.0);
    }

    #[test]
    fn batch_quantiles_match_individual() {
        let d: Vec<f64> = (0..100).map(|i| ((i * 31) % 97) as f64).collect();
        let ps = [0.05, 0.25, 0.5, 0.75, 0.95];
        let batch = quantiles(&d, &ps);
        for (q, &p) in batch.iter().zip(&ps) {
            close(*q, quantile(&d, p));
        }
    }

    #[test]
    fn monotone_in_p() {
        let d: Vec<f64> = (0..57).map(|i| ((i * 13) % 41) as f64).collect();
        let mut last = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = quantile(&d, i as f64 / 20.0);
            assert!(q >= last);
            last = q;
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_data_panics() {
        let _ = quantile(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "in [0,1]")]
    fn out_of_range_p_panics() {
        let _ = quantile(&[1.0], 1.5);
    }
}
