//! Boxplot five-number summaries.
//!
//! Figure 6 of the paper shows boxplots of φ-value scores per sampling
//! granularity. Its footnote fixes the convention: whiskers "extend to
//! the extreme values of data or 1.5 times the interquartile difference
//! from the center, whichever is less". [`Boxplot`] reproduces exactly
//! that, and renders a one-line ASCII form for the reproduction binaries.

use crate::quantile::quantile;

/// A boxplot summary of one data set.
///
/// ```
/// use statkit::Boxplot;
/// let mut data: Vec<f64> = (1..=9).map(f64::from).collect();
/// data.push(100.0); // an outlier
/// let b = Boxplot::from_data(&data);
/// assert_eq!(b.max, 100.0);
/// assert!(b.upper_whisker < 100.0); // whisker stops at the fence
/// assert_eq!(b.outliers, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Boxplot {
    /// Smallest observation.
    pub min: f64,
    /// Lower whisker end (≥ min).
    pub lower_whisker: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Upper whisker end (≤ max).
    pub upper_whisker: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean (Figure 7 plots the means of Figure 6's boxes).
    pub mean: f64,
    /// Number of observations outside the whiskers.
    pub outliers: usize,
    /// Number of observations.
    pub n: usize,
}

impl Boxplot {
    /// Summarize a data set.
    ///
    /// # Panics
    /// Panics if `data` is empty.
    #[must_use]
    pub fn from_data(data: &[f64]) -> Boxplot {
        assert!(!data.is_empty(), "boxplot of empty data");
        let q1 = quantile(data, 0.25);
        let median = quantile(data, 0.5);
        let q3 = quantile(data, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut lower_whisker = f64::INFINITY;
        let mut upper_whisker = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut outliers = 0;
        for &x in data {
            sum += x;
            min = min.min(x);
            max = max.max(x);
            if x >= lo_fence && x < lower_whisker {
                lower_whisker = x;
            }
            if x <= hi_fence && x > upper_whisker {
                upper_whisker = x;
            }
            if x < lo_fence || x > hi_fence {
                outliers += 1;
            }
        }
        // Degenerate all-outlier sides cannot occur (quartiles are inside
        // the fences), but guard anyway.
        if !lower_whisker.is_finite() {
            lower_whisker = q1;
        }
        if !upper_whisker.is_finite() {
            upper_whisker = q3;
        }
        Boxplot {
            min,
            lower_whisker,
            q1,
            median,
            q3,
            upper_whisker,
            max,
            mean: sum / data.len() as f64,
            outliers,
            n: data.len(),
        }
    }

    /// Interquartile range.
    #[must_use]
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Compact single-line rendering:
    /// `min ⊢ [q1 | median | q3] ⊣ max (mean=…, outliers=…)`.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{:.4} |-- [{:.4} {{{:.4}}} {:.4}] --| {:.4}  mean={:.4} n={} outliers={}",
            self.lower_whisker,
            self.q1,
            self.median,
            self.q3,
            self.upper_whisker,
            self.mean,
            self.n,
            self.outliers
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_symmetric_data() {
        let d: Vec<f64> = (1..=9).map(f64::from).collect();
        let b = Boxplot::from_data(&d);
        assert_eq!(b.median, 5.0);
        assert_eq!(b.q1, 3.0);
        assert_eq!(b.q3, 7.0);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.max, 9.0);
        // No outliers: whiskers reach the extremes.
        assert_eq!(b.lower_whisker, 1.0);
        assert_eq!(b.upper_whisker, 9.0);
        assert_eq!(b.outliers, 0);
        assert_eq!(b.mean, 5.0);
        assert_eq!(b.n, 9);
    }

    #[test]
    fn outlier_is_excluded_from_whisker() {
        let mut d: Vec<f64> = (1..=9).map(f64::from).collect();
        d.push(100.0);
        let b = Boxplot::from_data(&d);
        assert_eq!(b.max, 100.0);
        assert!(b.upper_whisker < 100.0);
        assert_eq!(b.outliers, 1);
    }

    #[test]
    fn whisker_is_an_actual_observation() {
        // Whiskers extend to the most extreme data point within the fence,
        // not to the fence itself.
        let d = [0.0, 10.0, 11.0, 12.0, 13.0, 14.0, 30.0];
        let b = Boxplot::from_data(&d);
        assert!(d.contains(&b.lower_whisker));
        assert!(d.contains(&b.upper_whisker));
    }

    #[test]
    fn constant_data() {
        let b = Boxplot::from_data(&[7.0; 5]);
        assert_eq!(b.min, 7.0);
        assert_eq!(b.max, 7.0);
        assert_eq!(b.iqr(), 0.0);
        assert_eq!(b.outliers, 0);
    }

    #[test]
    fn single_point() {
        let b = Boxplot::from_data(&[3.5]);
        assert_eq!(b.median, 3.5);
        assert_eq!(b.lower_whisker, 3.5);
        assert_eq!(b.upper_whisker, 3.5);
        assert_eq!(b.n, 1);
    }

    #[test]
    fn render_contains_fields() {
        let b = Boxplot::from_data(&[1.0, 2.0, 3.0]);
        let s = b.render();
        assert!(s.contains("mean="));
        assert!(s.contains("n=3"));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        let _ = Boxplot::from_data(&[]);
    }
}
