//! Sample autocorrelation function.
//!
//! Cochran's comparison of sampling methods (paper §5) turns entirely on
//! the *serial correlation structure* of the population: systematic
//! sampling wins or loses against random sampling depending on the
//! correlation between elements `k` apart. The ACF makes that structure
//! measurable, and the `acf` ablation experiment uses it to show *why*
//! the study trace's methods tie: its packet-size sequence has almost no
//! correlation at the sampled lags.

/// Sample autocorrelation of `data` at the given `lags`.
///
/// Uses the standard biased estimator `r(h) = c(h)/c(0)` with
/// `c(h) = (1/n) Σ (x_t − x̄)(x_{t+h} − x̄)`, which guarantees
/// `|r(h)| ≤ 1`.
///
/// # Panics
/// Panics if `data` has fewer than two points, has zero variance, or any
/// lag is ≥ `data.len()`.
#[must_use]
pub fn acf(data: &[f64], lags: &[usize]) -> Vec<f64> {
    assert!(data.len() >= 2, "ACF needs at least two points");
    let n = data.len();
    let mean = data.iter().sum::<f64>() / n as f64;
    let c0: f64 = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    assert!(c0 > 0.0, "ACF undefined for constant data");
    lags.iter()
        .map(|&h| {
            assert!(h < n, "lag {h} exceeds series length {n}");
            let ch: f64 = (0..n - h)
                .map(|t| (data[t] - mean) * (data[t + h] - mean))
                .sum::<f64>()
                / n as f64;
            ch / c0
        })
        .collect()
}

/// Lag-1 autocorrelation convenience wrapper.
///
/// # Panics
/// As [`acf`].
#[must_use]
pub fn lag1(data: &[f64]) -> f64 {
    acf(data, &[1])[0]
}

/// The approximate two-sided 95% significance band for a white-noise
/// null: `±1.96/√n`. Values inside the band are statistically
/// indistinguishable from no correlation.
#[must_use]
pub fn white_noise_band(n: usize) -> f64 {
    1.96 / (n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_lag_is_one() {
        let d = [1.0, 5.0, 2.0, 8.0, 3.0];
        assert!((acf(&d, &[0])[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn alternating_series_has_negative_lag1() {
        let d: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(lag1(&d) < -0.9);
    }

    #[test]
    fn periodic_series_peaks_at_period() {
        let period = 10;
        let d: Vec<f64> = (0..1000)
            .map(|i| (2.0 * std::f64::consts::PI * (i % period) as f64 / period as f64).sin())
            .collect();
        let r = acf(&d, &[period, period / 2]);
        assert!(r[0] > 0.9, "at-period {}", r[0]);
        assert!(r[1] < -0.9, "half-period {}", r[1]);
    }

    #[test]
    fn linear_trend_has_long_positive_correlation() {
        let d: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let r = acf(&d, &[1, 100]);
        assert!(r[0] > 0.99);
        assert!(r[1] > 0.7);
    }

    #[test]
    fn iid_series_is_inside_the_band() {
        use crate::rand_ext::standard_normal;
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        let d: Vec<f64> = (0..20_000).map(|_| standard_normal(&mut rng)).collect();
        let band = white_noise_band(d.len());
        for r in acf(&d, &[1, 5, 50, 500]) {
            assert!(r.abs() < 2.0 * band, "r = {r}, band = {band}");
        }
    }

    #[test]
    fn biased_estimator_is_bounded() {
        let d: Vec<f64> = (0..500).map(|i| ((i * 37) % 97) as f64).collect();
        for r in acf(&d, &[0, 1, 2, 10, 100, 499]) {
            assert!((-1.0..=1.0).contains(&r));
        }
    }

    #[test]
    #[should_panic(expected = "constant data")]
    fn constant_series_panics() {
        let _ = acf(&[2.0; 10], &[1]);
    }

    #[test]
    #[should_panic(expected = "exceeds series length")]
    fn oversized_lag_panics() {
        let _ = acf(&[1.0, 2.0, 3.0], &[3]);
    }
}
