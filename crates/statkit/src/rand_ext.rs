//! Seeded random distributions for workload synthesis.
//!
//! Implemented on top of `rand`'s uniform primitives only, so the whole
//! workspace stays within its small dependency budget. Every sampler is a
//! plain value type; randomness always flows through an explicit `&mut R:
//! Rng`, keeping generation deterministic under a fixed seed (a hard
//! requirement for reproducible experiments).

use rand::{Rng, RngExt};

/// Exponential distribution with the given mean (`rate = 1/mean`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Create with the given mean.
    ///
    /// # Panics
    /// Panics unless `mean > 0`.
    #[must_use]
    pub fn new(mean: f64) -> Self {
        assert!(mean > 0.0, "exponential mean must be positive");
        Exponential { mean }
    }

    /// Draw one value by inversion.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 1 - U is in (0, 1]; ln of it is finite.
        let u: f64 = rng.random();
        -self.mean * (1.0 - u).ln()
    }

    /// The configured mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }
}

/// Two-phase hyperexponential (H₂) distribution, fitted from a mean and a
/// squared coefficient of variation `cv² > 1` by the standard
/// balanced-means two-moment fit.
///
/// Packet interarrivals on aggregated WAN links are *burstier* than
/// Poisson; the paper's population has cv ≈ 1.16 (Table 3: σ 2734 over
/// mean 2358). H₂ is the minimal distribution that reproduces that
/// overdispersion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HyperExp2 {
    p1: f64,
    mean1: f64,
    mean2: f64,
}

impl HyperExp2 {
    /// Fit to the given mean and squared coefficient of variation.
    ///
    /// # Panics
    /// Panics unless `mean > 0` and `cv2 > 1`.
    #[must_use]
    pub fn from_mean_cv2(mean: f64, cv2: f64) -> Self {
        assert!(mean > 0.0, "H2 mean must be positive");
        assert!(
            cv2 > 1.0,
            "H2 requires cv^2 > 1 (got {cv2}); use Exponential at 1"
        );
        let p1 = 0.5 * (1.0 + ((cv2 - 1.0) / (cv2 + 1.0)).sqrt());
        HyperExp2 {
            p1,
            mean1: mean / (2.0 * p1),
            mean2: mean / (2.0 * (1.0 - p1)),
        }
    }

    /// Draw one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let branch_mean = if rng.random::<f64>() < self.p1 {
            self.mean1
        } else {
            self.mean2
        };
        let u: f64 = rng.random();
        -branch_mean * (1.0 - u).ln()
    }

    /// Theoretical mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.p1 * self.mean1 + (1.0 - self.p1) * self.mean2
    }
}

/// Log-normal distribution parameterized by the *underlying normal's*
/// `mu` and `sigma`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// From the underlying normal parameters.
    ///
    /// # Panics
    /// Panics unless `sigma >= 0`.
    #[must_use]
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "lognormal sigma must be nonnegative");
        LogNormal { mu, sigma }
    }

    /// Construct so the *lognormal itself* has the given mean and
    /// standard deviation.
    ///
    /// # Panics
    /// Panics unless both are positive.
    #[must_use]
    pub fn from_mean_std(mean: f64, std: f64) -> Self {
        assert!(
            mean > 0.0 && std > 0.0,
            "lognormal mean/std must be positive"
        );
        let cv2 = (std / mean).powi(2);
        let sigma2 = (1.0 + cv2).ln();
        LogNormal {
            mu: mean.ln() - sigma2 / 2.0,
            sigma: sigma2.sqrt(),
        }
    }

    /// Draw one value (Box–Muller on the underlying normal).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }

    /// Theoretical mean of the lognormal.
    #[must_use]
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

/// One draw from the standard normal (Box–Muller, one branch).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0,1] to keep ln finite.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// One draw from Poisson(λ) by summing unit exponentials until they
/// exceed λ. O(λ) per draw but free of the `exp(−λ)` underflow of the
/// classic Knuth product method, and the workload generator only draws a
/// few thousand per trace.
///
/// # Panics
/// Panics if `lambda` is negative or non-finite.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(
        lambda >= 0.0 && lambda.is_finite(),
        "poisson rate must be finite and nonnegative"
    );
    if lambda == 0.0 {
        return 0;
    }
    let mut sum = 0.0;
    let mut k: u64 = 0;
    loop {
        let u: f64 = rng.random();
        sum += -(1.0 - u).ln();
        if sum >= lambda {
            return k;
        }
        k += 1;
    }
}

/// One draw from Binomial(n, p).
///
/// Exact inversion for small `n·p`, normal approximation with continuity
/// correction (clamped to `[0, n]`) for large — accurate enough for the
/// Monte-Carlo null bands it serves.
///
/// # Panics
/// Panics unless `0 <= p <= 1`.
pub fn binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    // Exploit symmetry so the exact branch covers p near 1 too.
    if p > 0.5 {
        return n - binomial(rng, n, 1.0 - p);
    }
    let np = n as f64 * p;
    if np < 30.0 && n < 100_000 {
        // Exact: inversion through the CDF via the recurrence
        // P(k+1) = P(k) · (n-k)/(k+1) · p/(1-p).
        let mut u: f64 = rng.random();
        let ratio = p / (1.0 - p);
        let mut prob = (1.0 - p).powf(n as f64);
        let mut k = 0u64;
        loop {
            if u < prob || k >= n {
                return k;
            }
            u -= prob;
            prob *= (n - k) as f64 / (k + 1) as f64 * ratio;
            k += 1;
        }
    }
    // Normal approximation with continuity correction.
    let sigma = (np * (1.0 - p)).sqrt();
    let x = np + sigma * standard_normal(rng);
    x.round().clamp(0.0, n as f64) as u64
}

/// One multinomial draw: counts over `proportions` summing to `n`
/// (sequential conditional binomials).
///
/// # Panics
/// Panics if the proportions are empty, negative, or do not sum to ~1.
pub fn multinomial<R: Rng + ?Sized>(rng: &mut R, n: u64, proportions: &[f64]) -> Vec<u64> {
    assert!(!proportions.is_empty(), "need at least one category");
    let total: f64 = proportions.iter().sum();
    assert!(
        proportions.iter().all(|&p| p >= 0.0) && (total - 1.0).abs() < 1e-6,
        "proportions must be nonnegative and sum to 1"
    );
    let mut counts = Vec::with_capacity(proportions.len());
    let mut remaining_n = n;
    let mut remaining_p = 1.0f64;
    for (i, &p) in proportions.iter().enumerate() {
        if i == proportions.len() - 1 {
            counts.push(remaining_n);
            break;
        }
        let cond = if remaining_p > 1e-12 {
            (p / remaining_p).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let c = binomial(rng, remaining_n, cond);
        counts.push(c);
        remaining_n -= c;
        remaining_p -= p;
    }
    counts
}

/// Pareto (type I) distribution with scale `x_min` and shape `alpha`.
///
/// Used for heavy-tailed flow sizes; WAN traffic studies since the early
/// 1990s (including Paxson's, which the paper cites) found heavy tails in
/// connection sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Create with scale `x_min > 0` and shape `alpha > 0`.
    ///
    /// # Panics
    /// Panics on nonpositive parameters.
    #[must_use]
    pub fn new(x_min: f64, alpha: f64) -> Self {
        assert!(
            x_min > 0.0 && alpha > 0.0,
            "pareto parameters must be positive"
        );
        Pareto { x_min, alpha }
    }

    /// Draw one value by inversion.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.random::<f64>(); // (0, 1]
        self.x_min / u.powf(1.0 / self.alpha)
    }
}

/// A discrete distribution over arbitrary items with explicit weights,
/// sampled by binary search on the cumulative weights.
#[derive(Debug, Clone, PartialEq)]
pub struct Discrete<T: Clone> {
    items: Vec<T>,
    cumulative: Vec<f64>,
    total: f64,
}

impl<T: Clone> Discrete<T> {
    /// Build from `(item, weight)` pairs.
    ///
    /// # Panics
    /// Panics if no pair has positive weight or any weight is negative.
    #[must_use]
    pub fn new(pairs: &[(T, f64)]) -> Self {
        let mut items = Vec::with_capacity(pairs.len());
        let mut cumulative = Vec::with_capacity(pairs.len());
        let mut total = 0.0;
        for (item, w) in pairs {
            assert!(*w >= 0.0, "weights must be nonnegative");
            if *w > 0.0 {
                total += w;
                items.push(item.clone());
                cumulative.push(total);
            }
        }
        assert!(total > 0.0, "at least one positive weight required");
        Discrete {
            items,
            cumulative,
            total,
        }
    }

    /// Draw one item.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> &T {
        let u: f64 = rng.random::<f64>() * self.total;
        let idx = self.cumulative.partition_point(|&c| c <= u);
        // partition_point can return len() only if u == total exactly
        // (probability ~0 but floats); clamp defensively.
        &self.items[idx.min(self.items.len() - 1)]
    }

    /// The probability assigned to index `i` (post-filtering of zero
    /// weights).
    #[must_use]
    pub fn probability(&self, i: usize) -> f64 {
        let prev = if i == 0 { 0.0 } else { self.cumulative[i - 1] };
        (self.cumulative[i] - prev) / self.total
    }

    /// Items with positive weight, in insertion order.
    #[must_use]
    pub fn items(&self) -> &[T] {
        &self.items
    }
}

/// Zipf distribution over `{1, …, n}` with exponent `alpha`:
/// `P(X = i) ∝ i^(-alpha)`. Sampled by binary search on the cumulative
/// table, so draws cost O(log n) and are exact.
///
/// Flow-size distributions in measured traffic are famously Zipf-like;
/// this is the generator behind the heavy-tailed flow packs the
/// inversion estimators are scored against.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cumulative: Vec<f64>,
    total: f64,
}

impl Zipf {
    /// Build over support `{1, …, n}` with exponent `alpha > 0`.
    ///
    /// # Panics
    /// Panics when `n == 0` or `alpha` is not a positive finite number.
    #[must_use]
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "zipf support must be nonempty");
        assert!(
            alpha.is_finite() && alpha > 0.0,
            "zipf exponent must be positive"
        );
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 1..=n {
            total += (i as f64).powf(-alpha);
            cumulative.push(total);
        }
        Zipf { cumulative, total }
    }

    /// Draw one rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.random::<f64>() * self.total;
        let idx = self.cumulative.partition_point(|&c| c <= u);
        (idx.min(self.cumulative.len() - 1) + 1) as u64
    }

    /// The probability of rank `i` (1-based).
    #[must_use]
    pub fn probability(&self, i: u64) -> f64 {
        let i = i as usize;
        if i == 0 || i > self.cumulative.len() {
            return 0.0;
        }
        let prev = if i == 1 { 0.0 } else { self.cumulative[i - 2] };
        (self.cumulative[i - 1] - prev) / self.total
    }
}

/// Geometric distribution on `{1, 2, …}` with success probability `p`:
/// `P(X = s) = (1-p)^(s-1) · p`, mean `1/p`. Drawn by inversion.
///
/// The calibration battery leans on this one: a geometric parent
/// flow-size distribution has closed-form sampled-size expectations
/// under 1-in-k thinning, so estimator error is measurable exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// Create with success probability `0 < p <= 1`.
    ///
    /// # Panics
    /// Panics when `p` is outside `(0, 1]` or not finite.
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!(
            p.is_finite() && p > 0.0 && p <= 1.0,
            "geometric p must be in (0, 1]"
        );
        Geometric { p }
    }

    /// The distribution mean, `1/p`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        1.0 / self.p
    }

    /// `P(X = s)` for `s >= 1`.
    #[must_use]
    pub fn pmf(&self, s: u64) -> f64 {
        if s == 0 {
            return 0.0;
        }
        (1.0 - self.p).powi((s - 1) as i32) * self.p
    }

    /// Draw one value in `{1, 2, …}` by inversion.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p >= 1.0 {
            return 1;
        }
        let u: f64 = 1.0 - rng.random::<f64>(); // (0, 1]
        let s = (u.ln() / (1.0 - self.p).ln()).ceil();
        if s < 1.0 {
            1
        } else {
            s as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::Moments;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Exponential::new(2358.0);
        let mut r = rng(1);
        let m = Moments::from_values((0..200_000).map(|_| d.sample(&mut r)));
        assert!(
            (m.mean() - 2358.0).abs() / 2358.0 < 0.02,
            "mean {}",
            m.mean()
        );
        // Exponential: std == mean.
        assert!((m.std_dev() - 2358.0).abs() / 2358.0 < 0.02);
        assert!(m.min() >= 0.0);
    }

    #[test]
    fn exponential_median_is_mean_ln2() {
        let d = Exponential::new(1.0);
        let mut r = rng(2);
        let mut v: Vec<f64> = (0..100_000).map(|_| d.sample(&mut r)).collect();
        v.sort_by(f64::total_cmp);
        let med = v[v.len() / 2];
        assert!((med - std::f64::consts::LN_2).abs() < 0.02, "median {med}");
    }

    #[test]
    fn hyperexp2_matches_two_moments() {
        let d = HyperExp2::from_mean_cv2(2358.0, 1.3);
        assert!((d.mean() - 2358.0).abs() < 1e-9);
        let mut r = rng(11);
        let m = Moments::from_values((0..400_000).map(|_| d.sample(&mut r)));
        assert!(
            (m.mean() - 2358.0).abs() / 2358.0 < 0.02,
            "mean {}",
            m.mean()
        );
        let cv2 = (m.std_dev() / m.mean()).powi(2);
        assert!((cv2 - 1.3).abs() < 0.06, "cv2 {cv2}");
    }

    #[test]
    #[should_panic(expected = "cv^2 > 1")]
    fn hyperexp2_rejects_underdispersion() {
        let _ = HyperExp2::from_mean_cv2(1.0, 0.9);
    }

    #[test]
    fn lognormal_from_mean_std_matches() {
        let d = LogNormal::from_mean_std(424.0, 85.0);
        assert!((d.mean() - 424.0).abs() < 1e-9);
        let mut r = rng(3);
        let m = Moments::from_values((0..200_000).map(|_| d.sample(&mut r)));
        assert!((m.mean() - 424.0).abs() / 424.0 < 0.02, "mean {}", m.mean());
        assert!(
            (m.std_dev() - 85.0).abs() / 85.0 < 0.05,
            "std {}",
            m.std_dev()
        );
        // Lognormal is right-skewed.
        assert!(m.skewness() > 0.0);
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng(4);
        let m = Moments::from_values((0..200_000).map(|_| standard_normal(&mut r)));
        assert!(m.mean().abs() < 0.02);
        assert!((m.std_dev() - 1.0).abs() < 0.02);
        assert!(m.skewness().abs() < 0.05);
        assert!((m.kurtosis() - 3.0).abs() < 0.1);
    }

    #[test]
    fn poisson_moments() {
        let mut r = rng(12);
        let m = Moments::from_values((0..20_000).map(|_| poisson(&mut r, 424.2) as f64));
        assert!((m.mean() - 424.2).abs() / 424.2 < 0.01, "mean {}", m.mean());
        // Poisson: var == mean.
        assert!(
            (m.variance() - 424.2).abs() / 424.2 < 0.05,
            "var {}",
            m.variance()
        );
    }

    #[test]
    fn poisson_edge_cases() {
        let mut r = rng(13);
        assert_eq!(poisson(&mut r, 0.0), 0);
        // Tiny rate: overwhelmingly zero.
        let zeros = (0..10_000).filter(|_| poisson(&mut r, 1e-4) == 0).count();
        assert!(zeros > 9_990);
    }

    #[test]
    fn binomial_moments_exact_branch() {
        let mut r = rng(21);
        let m = Moments::from_values((0..50_000).map(|_| binomial(&mut r, 40, 0.3) as f64));
        assert!((m.mean() - 12.0).abs() < 0.1, "mean {}", m.mean());
        assert!((m.variance() - 8.4).abs() < 0.3, "var {}", m.variance());
    }

    #[test]
    fn binomial_moments_normal_branch() {
        let mut r = rng(22);
        let m = Moments::from_values((0..20_000).map(|_| binomial(&mut r, 1_000_000, 0.4) as f64));
        assert!((m.mean() - 400_000.0).abs() < 300.0, "mean {}", m.mean());
        let expected_var = 240_000.0;
        assert!(
            (m.variance() - expected_var).abs() / expected_var < 0.05,
            "var {}",
            m.variance()
        );
    }

    #[test]
    fn binomial_edge_cases() {
        let mut r = rng(23);
        assert_eq!(binomial(&mut r, 0, 0.5), 0);
        assert_eq!(binomial(&mut r, 10, 0.0), 0);
        assert_eq!(binomial(&mut r, 10, 1.0), 10);
        for _ in 0..1000 {
            let x = binomial(&mut r, 7, 0.9);
            assert!(x <= 7);
        }
    }

    #[test]
    fn multinomial_counts_sum_and_track_proportions() {
        let mut r = rng(24);
        let props = [0.403, 0.199, 0.398];
        let mut totals = [0u64; 3];
        let draws = 2_000;
        let n = 1_000u64;
        for _ in 0..draws {
            let c = multinomial(&mut r, n, &props);
            assert_eq!(c.iter().sum::<u64>(), n);
            for (t, x) in totals.iter_mut().zip(&c) {
                *t += x;
            }
        }
        for (t, p) in totals.iter().zip(&props) {
            let emp = *t as f64 / (draws as f64 * n as f64);
            assert!((emp - p).abs() < 0.005, "{emp} vs {p}");
        }
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_multinomial_panics() {
        let mut r = rng(25);
        let _ = multinomial(&mut r, 10, &[0.5, 0.2]);
    }

    #[test]
    fn pareto_respects_minimum() {
        let d = Pareto::new(5.0, 1.5);
        let mut r = rng(5);
        for _ in 0..10_000 {
            assert!(d.sample(&mut r) >= 5.0);
        }
    }

    #[test]
    fn pareto_tail_heavier_than_exponential() {
        let p = Pareto::new(1.0, 1.2);
        let e = Exponential::new(6.0); // same order of mean
        let mut r = rng(6);
        let p_big = (0..100_000).filter(|_| p.sample(&mut r) > 100.0).count();
        let e_big = (0..100_000).filter(|_| e.sample(&mut r) > 100.0).count();
        assert!(p_big > e_big * 5, "pareto {p_big} vs exp {e_big}");
    }

    #[test]
    fn discrete_matches_weights() {
        let d = Discrete::new(&[("a", 1.0), ("b", 3.0), ("c", 0.0), ("d", 6.0)]);
        assert_eq!(d.items(), &["a", "b", "d"]); // zero weight dropped
        assert!((d.probability(0) - 0.1).abs() < 1e-12);
        assert!((d.probability(1) - 0.3).abs() < 1e-12);
        assert!((d.probability(2) - 0.6).abs() < 1e-12);
        let mut r = rng(7);
        let mut counts = [0usize; 3];
        for _ in 0..60_000 {
            match *d.sample(&mut r) {
                "a" => counts[0] += 1,
                "b" => counts[1] += 1,
                "d" => counts[2] += 1,
                _ => unreachable!(),
            }
        }
        assert!((counts[0] as f64 / 60_000.0 - 0.1).abs() < 0.01);
        assert!((counts[1] as f64 / 60_000.0 - 0.3).abs() < 0.01);
        assert!((counts[2] as f64 / 60_000.0 - 0.6).abs() < 0.01);
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let d = Exponential::new(10.0);
        let a: Vec<f64> = {
            let mut r = rng(42);
            (0..10).map(|_| d.sample(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = rng(42);
            (0..10).map(|_| d.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn all_zero_weights_panic() {
        let _ = Discrete::new(&[("a", 0.0)]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn bad_exponential_panics() {
        let _ = Exponential::new(0.0);
    }

    #[test]
    fn zipf_ranks_follow_power_law() {
        let z = Zipf::new(100, 1.0);
        // P(1)/P(2) = 2 for alpha = 1.
        assert!((z.probability(1) / z.probability(2) - 2.0).abs() < 1e-9);
        assert_eq!(z.probability(0), 0.0);
        assert_eq!(z.probability(101), 0.0);
        let mut r = rng(11);
        let mut ones = 0usize;
        let mut total = 0usize;
        for _ in 0..50_000 {
            let s = z.sample(&mut r);
            assert!((1..=100).contains(&s));
            if s == 1 {
                ones += 1;
            }
            total += 1;
        }
        let expect = z.probability(1);
        assert!((ones as f64 / total as f64 - expect).abs() < 0.01);
    }

    #[test]
    fn geometric_mean_and_pmf_match() {
        let g = Geometric::new(0.02);
        assert!((g.mean() - 50.0).abs() < 1e-12);
        // PMF sums to ~1 over a long prefix.
        let head: f64 = (1..=2000).map(|s| g.pmf(s)).sum();
        assert!((head - 1.0).abs() < 1e-9, "{head}");
        let mut r = rng(12);
        let mean = (0..200_000).map(|_| g.sample(&mut r) as f64).sum::<f64>() / 200_000.0;
        assert!((mean - 50.0).abs() < 1.0, "{mean}");
        // p = 1 is the degenerate point mass at 1.
        assert_eq!(Geometric::new(1.0).sample(&mut r), 1);
    }

    #[test]
    #[should_panic(expected = "zipf exponent")]
    fn bad_zipf_panics() {
        let _ = Zipf::new(10, 0.0);
    }

    #[test]
    #[should_panic(expected = "geometric p")]
    fn bad_geometric_panics() {
        let _ = Geometric::new(0.0);
    }
}
