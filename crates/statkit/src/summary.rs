//! Table 2/3-style summary rows.
//!
//! The paper summarizes each distribution with the same row format:
//! `Min. 5% 25% Median 75% 95% Max. Mean Std.Dev.` (Table 3) plus
//! `Skew Kurtosis` (Table 2). [`SummaryRow`] computes and renders that
//! row so the reproduction binaries print tables directly comparable to
//! the paper's.

use crate::moments::Moments;
use crate::quantile::quantiles;
use std::fmt;

/// A full summary of one distribution in the paper's table format.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SummaryRow {
    /// Smallest observation.
    pub min: f64,
    /// 5th percentile.
    pub p5: f64,
    /// 25th percentile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q3: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Largest observation.
    pub max: f64,
    /// Mean.
    pub mean: f64,
    /// Population standard deviation (the paper uses population
    /// parameters of its trace; §4).
    pub std_dev: f64,
    /// Skewness.
    pub skew: f64,
    /// Plain (non-excess) kurtosis; 3 for a normal population.
    pub kurtosis: f64,
    /// Number of observations.
    pub n: u64,
}

impl SummaryRow {
    /// Summarize a data set.
    ///
    /// # Panics
    /// Panics if `data` is empty.
    #[must_use]
    pub fn from_data(data: &[f64]) -> SummaryRow {
        assert!(!data.is_empty(), "summary of empty data");
        let qs = quantiles(data, &[0.05, 0.25, 0.5, 0.75, 0.95]);
        let m = Moments::from_values(data.iter().copied());
        SummaryRow {
            min: m.min(),
            p5: qs[0],
            q1: qs[1],
            median: qs[2],
            q3: qs[3],
            p95: qs[4],
            max: m.max(),
            mean: m.mean(),
            std_dev: m.std_dev(),
            skew: m.skewness(),
            kurtosis: m.kurtosis(),
            n: m.count(),
        }
    }

    /// Header matching [`SummaryRow`]'s `Display` columns.
    #[must_use]
    pub fn header() -> &'static str {
        "      Min        5%       25%    Median       75%       95%       Max      Mean   Std.Dev      Skew  Kurtosis"
    }
}

impl fmt::Display for SummaryRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.2} {:>9.2}",
            self.min,
            self.p5,
            self.q1,
            self.median,
            self.q3,
            self.p95,
            self.max,
            self.mean,
            self.std_dev,
            self.skew,
            self.kurtosis
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_data() {
        let d: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = SummaryRow::from_data(&d);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.median - 50.5).abs() < 1e-9);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!((s.p5 - 5.95).abs() < 1e-9); // type-7 on 1..100
        assert!((s.p95 - 95.05).abs() < 1e-9);
        assert_eq!(s.n, 100);
        assert!(s.skew.abs() < 1e-9);
    }

    #[test]
    fn display_renders_all_columns() {
        let d = [1.0, 2.0, 3.0, 4.0];
        let s = SummaryRow::from_data(&d).to_string();
        // 11 numeric columns.
        assert_eq!(s.split_whitespace().count(), 11);
        assert_eq!(
            SummaryRow::header().split_whitespace().count(),
            11,
            "header/row column mismatch"
        );
    }

    #[test]
    fn quantiles_are_ordered() {
        let d: Vec<f64> = (0..500).map(|i| ((i * 7919) % 104729) as f64).collect();
        let s = SummaryRow::from_data(&d);
        assert!(s.min <= s.p5);
        assert!(s.p5 <= s.q1);
        assert!(s.q1 <= s.median);
        assert!(s.median <= s.q3);
        assert!(s.q3 <= s.p95);
        assert!(s.p95 <= s.max);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_data_panics() {
        let _ = SummaryRow::from_data(&[]);
    }
}
