//! Anderson–Darling goodness-of-fit test (one sample, fully specified
//! reference distribution — "case 0").
//!
//! The paper (§5.2) cites the A² test [Anderson & Darling 1954] among the
//! sophisticated alternatives that proved hard to apply to WAN traffic.
//! We implement the case-0 statistic and the standard upper-tail critical
//! values so the workspace can demonstrate the difficulty directly: the
//! test assumes a continuous reference CDF, and the massive ties of
//! discretized traffic data drive `F(xᵢ)` to exact 0/1 values where the
//! statistic degenerates (handled here by clamping, as is conventional).

/// Upper-tail critical values for the case-0 A² statistic
/// (D'Agostino & Stephens, *Goodness of Fit*, Table 4.2).
const CRITICAL: [(f64, f64); 5] = [
    (0.10, 1.933),
    (0.05, 2.492),
    (0.025, 3.070),
    (0.01, 3.880),
    (0.005, 4.500),
];

/// Result of a one-sample Anderson–Darling test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AndersonDarling {
    /// The A² statistic.
    pub statistic: f64,
    /// Sample size.
    pub n: usize,
}

impl AndersonDarling {
    /// Compute A² of `data` against a fully specified reference CDF.
    ///
    /// CDF values are clamped to `[1e-12, 1 − 1e-12]` so discrete or
    /// truncated references do not produce infinities; heavy clamping is
    /// itself the signal that A² is inappropriate for the data (the
    /// paper's point).
    ///
    /// # Panics
    /// Panics if `data` is empty.
    #[must_use]
    pub fn test<F: Fn(f64) -> f64>(data: &[f64], cdf: F) -> AndersonDarling {
        assert!(!data.is_empty(), "A-D requires a nonempty sample");
        let mut xs = data.to_vec();
        xs.sort_by(f64::total_cmp);
        let n = xs.len();
        let nf = n as f64;
        let mut s = 0.0;
        for i in 0..n {
            let fi = cdf(xs[i]).clamp(1e-12, 1.0 - 1e-12);
            let fni = cdf(xs[n - 1 - i]).clamp(1e-12, 1.0 - 1e-12);
            s += (2.0 * i as f64 + 1.0) * (fi.ln() + (1.0 - fni).ln());
        }
        AndersonDarling {
            statistic: -nf - s / nf,
            n,
        }
    }

    /// Whether the null hypothesis is rejected at `alpha`. Only the
    /// tabulated case-0 levels (0.10, 0.05, 0.025, 0.01, 0.005) are
    /// supported.
    ///
    /// # Panics
    /// Panics on an untabulated `alpha`.
    #[must_use]
    pub fn rejects_at(&self, alpha: f64) -> bool {
        for &(a, crit) in &CRITICAL {
            if (a - alpha).abs() < 1e-12 {
                return self.statistic > crit;
            }
        }
        panic!("alpha {alpha} not in the case-0 critical value table");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_grid(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect()
    }

    #[test]
    fn uniform_data_against_uniform_cdf_accepts() {
        let data = uniform_grid(200);
        let t = AndersonDarling::test(&data, |x| x.clamp(0.0, 1.0));
        assert!(t.statistic < 1.0, "A2 = {}", t.statistic);
        assert!(!t.rejects_at(0.05));
        assert_eq!(t.n, 200);
    }

    #[test]
    fn wrong_reference_rejects() {
        let data = uniform_grid(200);
        // Claim data ~ concentrated near 0.
        let t = AndersonDarling::test(&data, |x| (x * x).clamp(0.0, 1.0));
        assert!(t.rejects_at(0.01), "A2 = {}", t.statistic);
    }

    #[test]
    fn shifted_data_rejects() {
        let data: Vec<f64> = uniform_grid(300).iter().map(|x| x * 0.5).collect();
        let t = AndersonDarling::test(&data, |x| x.clamp(0.0, 1.0));
        assert!(t.rejects_at(0.005));
    }

    #[test]
    fn degenerate_discrete_reference_is_finite() {
        // A step CDF (all mass below the data) clamps rather than blows up.
        let data = uniform_grid(50);
        let t = AndersonDarling::test(&data, |_| 1.0);
        assert!(t.statistic.is_finite());
        assert!(t.rejects_at(0.05));
    }

    #[test]
    fn statistic_grows_with_divergence() {
        let data = uniform_grid(100);
        let mild = AndersonDarling::test(&data, |x: f64| x.powf(1.1).clamp(0.0, 1.0));
        let severe = AndersonDarling::test(&data, |x: f64| x.powf(3.0).clamp(0.0, 1.0));
        assert!(severe.statistic > mild.statistic);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_sample_panics() {
        let _ = AndersonDarling::test(&[], |x| x);
    }

    #[test]
    #[should_panic(expected = "not in the case-0")]
    fn untabulated_alpha_panics() {
        let t = AndersonDarling::test(&[0.5], |x| x);
        let _ = t.rejects_at(0.2);
    }
}
