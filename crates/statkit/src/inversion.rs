//! Flow-statistics inversion: recover the **parent** flow-size
//! distribution from flows observed through deterministic 1-in-k packet
//! sampling.
//!
//! The sampling model is the classical Poisson-thinning approximation
//! for interleaved flows (Chabchoub et al., "Inference of Flow
//! Statistics via Packet Sampling"; Clegg et al., "Towards Informative
//! Statistical Flow Inversion"): a parent flow of `s` packets
//! contributes `J ~ Poisson(s/k)` sampled packets, and is *detected*
//! (seen at all) with probability `p_d(s) = 1 − e^(−s/k)`. Every
//! estimator here consumes the sampled flow sizes (packets per flow
//! *after* sampling, each ≥ 1) plus the interval `k`, and returns a
//! weighted parent-size estimate:
//!
//! * [`naive_scaling`] — each sampled flow of `j` packets becomes one
//!   parent flow of `j·k` packets. Ignores missed flows entirely; the
//!   baseline every other estimator must beat.
//! * [`tail_rescale`] — same `j·k` support, but each flow is
//!   up-weighted by `1/p_d(j·k)` to repair the detection bias, so the
//!   estimated *totals* (and the small-size end of the shape) recover
//!   the flows sampling missed.
//! * [`syn_flow_count`] — SYN-marked packets appear once per flow, so
//!   `syn_sampled · k` estimates the parent flow **count** without any
//!   size model at all.
//! * [`em_invert`] — zero-truncated Poisson-mixture EM over a parent
//!   -size grid: iteratively reallocates each observed `j` across the
//!   parent sizes that could have produced it, then divides out
//!   `p_d(s)`. The only estimator able to place mass *below* `k`.
//!
//! All estimators are pure functions of their arguments (fixed
//! iteration counts, no RNG), so equal inputs give bit-identical
//! estimates — the property the CI determinism stage byte-diffs.

use crate::special::ln_gamma;
use std::collections::BTreeMap;
use std::fmt;

/// Why an inversion could not run. Every degenerate input maps to a
/// typed error — the estimators never panic (the state-fuzz arm pins
/// this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InversionError {
    /// `k == 0`: not a sampling process.
    ZeroInterval,
    /// No sampled flows to invert.
    Empty,
    /// A sampled flow with zero packets — an aggregation bug upstream;
    /// a flow that was never sampled must not appear at all.
    ZeroSize,
    /// `j · k` overflowed `u64`; the named sampled size is the culprit.
    SizeOverflow {
        /// The sampled flow size whose rescaling overflowed.
        size: u64,
    },
    /// An internal weight computation left the finite range.
    NonFinite,
}

impl fmt::Display for InversionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InversionError::ZeroInterval => write!(f, "sampling interval k must be positive"),
            InversionError::Empty => write!(f, "no sampled flows to invert"),
            InversionError::ZeroSize => write!(f, "sampled flow with zero packets"),
            InversionError::SizeOverflow { size } => {
                write!(f, "sampled size {size} times k overflows u64")
            }
            InversionError::NonFinite => write!(f, "inversion produced a non-finite weight"),
        }
    }
}

impl std::error::Error for InversionError {}

/// A weighted estimate of the parent flow-size distribution: support
/// points `(parent_size, estimated_flows)` in increasing size order,
/// plus the estimated total parent flow count.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowEstimate {
    /// `(parent flow size in packets, estimated number of such flows)`,
    /// strictly increasing in size, weights positive and finite.
    pub points: Vec<(u64, f64)>,
    /// Estimated total number of parent flows (the sum of the weights).
    pub total_flows: f64,
}

impl FlowEstimate {
    /// Estimated mean parent flow size (packets), `None` when the
    /// estimate carries no mass.
    #[must_use]
    pub fn mean_size(&self) -> Option<f64> {
        if self.total_flows <= 0.0 {
            return None;
        }
        let weighted: f64 = self.points.iter().map(|&(s, w)| s as f64 * w).sum();
        Some(weighted / self.total_flows)
    }
}

/// Shared input validation for the size-based estimators.
fn validate(sampled: &[u64], k: u64) -> Result<(), InversionError> {
    if k == 0 {
        return Err(InversionError::ZeroInterval);
    }
    if sampled.is_empty() {
        return Err(InversionError::Empty);
    }
    for &j in sampled {
        if j == 0 {
            return Err(InversionError::ZeroSize);
        }
        if j.checked_mul(k).is_none() {
            return Err(InversionError::SizeOverflow { size: j });
        }
    }
    Ok(())
}

/// Group sampled sizes into `(j, count)` pairs, ascending in `j`.
fn group(sampled: &[u64]) -> BTreeMap<u64, u64> {
    let mut counts = BTreeMap::new();
    for &j in sampled {
        *counts.entry(j).or_insert(0u64) += 1;
    }
    counts
}

/// Detection probability of a parent flow of `s` packets under 1-in-k
/// Poisson thinning: `1 − e^(−s/k)`.
#[must_use]
pub fn detection_probability(s: u64, k: u64) -> f64 {
    if k == 0 {
        return 1.0;
    }
    -(-(s as f64) / k as f64).exp_m1()
}

/// Naive scaling: each sampled flow of `j` packets is reported as one
/// parent flow of `j·k` packets. `total_flows` is exactly the detected
/// flow count — everything sampling missed stays missing.
///
/// # Errors
/// [`InversionError`] on `k == 0`, empty input, a zero sampled size, or
/// `j·k` overflow.
pub fn naive_scaling(sampled: &[u64], k: u64) -> Result<FlowEstimate, InversionError> {
    validate(sampled, k)?;
    let points: Vec<(u64, f64)> = group(sampled)
        .into_iter()
        .map(|(j, c)| (j * k, c as f64))
        .collect();
    Ok(FlowEstimate {
        total_flows: sampled.len() as f64,
        points,
    })
}

/// Tail rescaling (Chabchoub): like [`naive_scaling`], but each
/// detected flow is weighted by `1 / p_d(j·k)` so the flows that
/// sampling missed are restored to the estimate — mostly at the small
/// -size end, where detection is rare.
///
/// # Errors
/// [`InversionError`] on `k == 0`, empty input, a zero sampled size,
/// `j·k` overflow, or a non-finite weight.
pub fn tail_rescale(sampled: &[u64], k: u64) -> Result<FlowEstimate, InversionError> {
    validate(sampled, k)?;
    let mut points = Vec::new();
    let mut total = 0.0f64;
    for (j, c) in group(sampled) {
        let s = j * k;
        let p = detection_probability(s, k);
        let w = c as f64 / p;
        if !w.is_finite() {
            return Err(InversionError::NonFinite);
        }
        total += w;
        points.push((s, w));
    }
    if !total.is_finite() {
        return Err(InversionError::NonFinite);
    }
    Ok(FlowEstimate {
        points,
        total_flows: total,
    })
}

/// SYN-based flow counting: SYN-marked packets occur exactly once per
/// flow, so under 1-in-k sampling the parent flow count is estimated as
/// `sampled_syn_packets · k`. No size model, no shape — just the count.
///
/// # Errors
/// [`InversionError::ZeroInterval`] on `k == 0`.
pub fn syn_flow_count(sampled_syn_packets: u64, k: u64) -> Result<f64, InversionError> {
    if k == 0 {
        return Err(InversionError::ZeroInterval);
    }
    Ok(sampled_syn_packets as f64 * k as f64)
}

/// Tuning for [`em_invert`]; [`EmConfig::default`] matches what the
/// experiment grid and perf cells run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmConfig {
    /// Maximum number of parent-size grid points.
    pub grid_points: usize,
    /// Fixed EM iteration count (no data-dependent stopping, so equal
    /// inputs give bit-identical output).
    pub iterations: usize,
    /// Smooth θ with a `[¼, ½, ¼]` kernel after each M-step (EMS,
    /// Silverman et al.). The unsmoothed mixture NPMLE is ill-posed: it
    /// degenerates to a few spikes — in particular a spike at the
    /// smallest parent size, which the `1/p_d` inversion then amplifies
    /// into a wildly wrong small-flow count. Smoothing regularizes
    /// toward the smooth parent distributions real traffic has.
    pub smooth: bool,
}

impl Default for EmConfig {
    fn default() -> Self {
        EmConfig {
            grid_points: 192,
            iterations: 60,
            smooth: true,
        }
    }
}

/// EM/scaling inversion (Clegg): fit a zero-truncated Poisson mixture
/// over a parent-size grid to the observed sampled sizes, then divide
/// out the detection probability per grid point. Runs
/// [`EmConfig::default`]'s fixed iteration budget.
///
/// # Errors
/// [`InversionError`] on `k == 0`, empty input, a zero sampled size,
/// `j·k` overflow, or non-finite weights.
pub fn em_invert(sampled: &[u64], k: u64) -> Result<FlowEstimate, InversionError> {
    em_invert_with(sampled, k, EmConfig::default())
}

/// [`em_invert`] with explicit tuning.
///
/// # Errors
/// As [`em_invert`].
pub fn em_invert_with(
    sampled: &[u64],
    k: u64,
    cfg: EmConfig,
) -> Result<FlowEstimate, InversionError> {
    validate(sampled, k)?;
    let cfg = EmConfig {
        grid_points: cfg.grid_points.max(2),
        iterations: cfg.iterations.max(1),
        ..cfg
    };
    let counts = group(sampled);
    let n = sampled.len() as f64;
    let j_max = *counts.keys().next_back().expect("nonempty after validate");

    // Parent-size grid: 1 … ~1.5·j_max·k in `grid_points` uniform steps.
    // j_max·k cannot overflow (validated); the 1.5 headroom is saturating.
    let s_max = (j_max * k).saturating_add((j_max * k) / 2).max(2);
    let step = s_max.div_ceil(cfg.grid_points as u64).max(1);
    // Clamp every product into [1, s_max]: with j_max near u64::MAX
    // (k == 1 passes validation) the later products saturate, and the
    // old `take_while` predicate both admitted points past s_max and
    // cut the grid short at the first saturated product. Clamping and
    // deduping the collapsed tail keeps the grid strictly increasing
    // and never past the ceiling.
    let mut grid: Vec<u64> = (1..=cfg.grid_points as u64)
        .map(|i| i.saturating_mul(step).min(s_max))
        .collect();
    grid.dedup();
    let m = grid.len();

    // Per-grid-point constants: λ_s = s/k, log p_d, and the
    // zero-truncated log-pmf offset.
    let lambdas: Vec<f64> = grid.iter().map(|&s| s as f64 / k as f64).collect();
    let ln_pd: Vec<f64> = lambdas.iter().map(|&l| (-(-l).exp_m1()).ln()).collect();

    // log P(J = j | parent λ, detected) = j·lnλ − λ − lnΓ(j+1) − ln p_d.
    let distinct: Vec<(u64, f64)> = counts.iter().map(|(&j, &c)| (j, c as f64)).collect();
    let mut ln_q = vec![0.0f64; distinct.len() * m];
    for (ji, &(j, _)) in distinct.iter().enumerate() {
        let jf = j as f64;
        let ln_fact = ln_gamma(jf + 1.0);
        for (si, &l) in lambdas.iter().enumerate() {
            ln_q[ji * m + si] = jf * l.ln() - l - ln_fact - ln_pd[si];
        }
    }

    // EM on the mixture weights θ over detected flows.
    let mut theta = vec![1.0 / m as f64; m];
    let mut next = vec![0.0f64; m];
    let mut resp = vec![0.0f64; m];
    for _ in 0..cfg.iterations {
        next.iter_mut().for_each(|x| *x = 0.0);
        for (ji, &(_, c)) in distinct.iter().enumerate() {
            let row = &ln_q[ji * m..(ji + 1) * m];
            let mut best = f64::NEG_INFINITY;
            for si in 0..m {
                let v = if theta[si] > 0.0 {
                    theta[si].ln() + row[si]
                } else {
                    f64::NEG_INFINITY
                };
                resp[si] = v;
                if v > best {
                    best = v;
                }
            }
            if !best.is_finite() {
                // Every component assigns this j probability zero
                // (deep underflow); spread it uniformly.
                resp.iter_mut().for_each(|x| *x = 1.0 / m as f64);
            } else {
                let mut z = 0.0;
                for r in resp.iter_mut().take(m) {
                    *r = (*r - best).exp();
                    z += *r;
                }
                resp.iter_mut().for_each(|x| *x /= z);
            }
            for si in 0..m {
                next[si] += c * resp[si];
            }
        }
        for si in 0..m {
            theta[si] = next[si] / n;
        }
        if cfg.smooth && m >= 2 {
            // Mass-preserving [¼, ½, ¼] scatter; the boundary share that
            // would fall off the grid stays on its source point.
            next.iter_mut().for_each(|x| *x = 0.0);
            for si in 0..m {
                let w = theta[si];
                let (left, right) = (0.25 * w, 0.25 * w);
                next[si] += 0.5 * w;
                if si > 0 {
                    next[si - 1] += left;
                } else {
                    next[si] += left;
                }
                if si + 1 < m {
                    next[si + 1] += right;
                } else {
                    next[si] += right;
                }
            }
            theta.copy_from_slice(&next);
        }
    }

    // Divide out detection probability to recover the parent counts.
    let mut points = Vec::with_capacity(m);
    let mut total = 0.0f64;
    for si in 0..m {
        let pd = detection_probability(grid[si], k);
        let w = n * theta[si] / pd;
        if !w.is_finite() {
            return Err(InversionError::NonFinite);
        }
        if w > 1e-9 {
            points.push((grid[si], w));
            total += w;
        }
    }
    if !total.is_finite() || total <= 0.0 {
        return Err(InversionError::NonFinite);
    }
    Ok(FlowEstimate {
        points,
        total_flows: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_scales_sizes_by_k() {
        let est = naive_scaling(&[1, 1, 2, 5], 50).unwrap();
        assert_eq!(est.points, vec![(50, 2.0), (100, 1.0), (250, 1.0)]);
        assert_eq!(est.total_flows, 4.0);
        assert!((est.mean_size().unwrap() - 112.5).abs() < 1e-12);
    }

    #[test]
    fn tail_rescale_upweights_small_flows() {
        let est = tail_rescale(&[1, 1, 2, 5], 50).unwrap();
        // Every weight exceeds its naive counterpart (p_d < 1)…
        assert!(est.total_flows > 4.0);
        // …and the smallest size gets the largest correction.
        let w_small = est.points[0].1 / 2.0; // per-flow weight at s = 50
        let w_large = est.points[2].1;
        assert!(w_small > w_large);
    }

    #[test]
    fn syn_count_scales_by_k() {
        assert_eq!(syn_flow_count(12, 50).unwrap(), 600.0);
        assert_eq!(syn_flow_count(0, 50).unwrap(), 0.0);
        assert_eq!(syn_flow_count(5, 0), Err(InversionError::ZeroInterval));
    }

    #[test]
    fn typed_errors_on_degenerate_inputs() {
        for f in [naive_scaling, tail_rescale, em_invert] {
            assert_eq!(f(&[1, 2], 0), Err(InversionError::ZeroInterval));
            assert_eq!(f(&[], 10), Err(InversionError::Empty));
            assert_eq!(f(&[3, 0], 10), Err(InversionError::ZeroSize));
            assert_eq!(
                f(&[u64::MAX / 2], 10),
                Err(InversionError::SizeOverflow { size: u64::MAX / 2 })
            );
        }
    }

    /// Regression: the grid builder's old `take_while` predicate could
    /// admit points past `s_max` and cut the grid at the first
    /// saturated product. At `k == 1` with a sampled size near
    /// `u64::MAX` (which passes overflow validation), later grid
    /// products saturate; the estimate must still come back with
    /// strictly increasing support bounded by the grid ceiling.
    #[test]
    fn em_grid_survives_saturating_sizes_at_k_one() {
        let j_max = u64::MAX;
        let est = em_invert(&[1, 5, j_max], 1).unwrap();
        // s_max = saturating 1.5 · j_max · k.
        let s_max = j_max.saturating_add(j_max / 2);
        assert!(!est.points.is_empty());
        for pair in est.points.windows(2) {
            assert!(pair[0].0 < pair[1].0, "grid support must strictly increase");
        }
        for &(s, w) in &est.points {
            assert!(
                (1..=s_max).contains(&s),
                "support point {s} outside [1, s_max]"
            );
            assert!(w.is_finite() && w > 0.0);
        }
        assert!(est.total_flows.is_finite() && est.total_flows > 0.0);
    }

    #[test]
    fn single_flow_inputs_invert_cleanly() {
        for f in [naive_scaling, tail_rescale, em_invert] {
            let est = f(&[3], 10).unwrap();
            assert!(est.total_flows >= 1.0);
            assert!(est.points.iter().all(|&(s, w)| s > 0 && w.is_finite()));
        }
        // Extreme but representable sampled size: must not panic.
        let est = em_invert(&[u64::from(u32::MAX)], 100).unwrap();
        assert!(est.total_flows.is_finite());
    }

    #[test]
    fn em_places_mass_below_k() {
        // Many 1-packet sampled flows: the parent population must
        // contain flows smaller than k, which naive scaling cannot
        // represent but EM can.
        let sampled: Vec<u64> = std::iter::repeat_n(1, 400).chain([2, 2, 3]).collect();
        let k = 50;
        let em = em_invert(&sampled, k).unwrap();
        let below: f64 = em
            .points
            .iter()
            .filter(|&&(s, _)| s < k)
            .map(|&(_, w)| w)
            .sum();
        assert!(below > 0.0, "EM should place mass below k, got {em:?}");
        let naive = naive_scaling(&sampled, k).unwrap();
        assert!(naive.points.iter().all(|&(s, _)| s >= k));
    }

    #[test]
    fn estimates_are_deterministic() {
        let sampled: Vec<u64> = (1..=40).flat_map(|j| std::iter::repeat_n(j, 5)).collect();
        let a = em_invert(&sampled, 10).unwrap();
        let b = em_invert(&sampled, 10).unwrap();
        assert_eq!(a, b);
        for (&(sa, wa), &(sb, wb)) in a.points.iter().zip(&b.points) {
            assert_eq!(sa, sb);
            assert_eq!(wa.to_bits(), wb.to_bits());
        }
    }

    #[test]
    fn detection_probability_is_monotone() {
        let k = 50;
        let mut last = 0.0;
        for s in [1u64, 5, 25, 50, 100, 500, 5_000] {
            let p = detection_probability(s, k);
            assert!(p > last && p <= 1.0, "p_d({s}) = {p}");
            last = p;
        }
        assert!((detection_probability(50, 50) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
    }
}
