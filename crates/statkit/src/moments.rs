//! Streaming central moments: mean, variance, skewness, kurtosis.
//!
//! One numerically stable pass (Welford/Pébay updates) produces every
//! moment the paper's Table 2 reports — mean, standard deviation,
//! skewness, and (plain, non-excess) kurtosis. Accumulators can be merged,
//! which the per-window experiment runner uses to combine partial scans.

/// Accumulator of the first four central moments.
///
/// ```
/// use statkit::Moments;
/// let m = Moments::from_values([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
/// assert_eq!(m.mean(), 5.0);
/// assert!((m.std_dev() - 2.0).abs() < 1e-12); // population convention
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
    min: f64,
    max: f64,
}

impl Moments {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Moments {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            m3: 0.0,
            m4: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Accumulate from an iterator.
    #[must_use]
    pub fn from_values<I: IntoIterator<Item = f64>>(values: I) -> Self {
        let mut m = Moments::new();
        for v in values {
            m.push(v);
        }
        m
    }

    /// Add one observation (Pébay's single-pass update).
    pub fn push(&mut self, x: f64) {
        let n1 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n1;
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merge another accumulator into this one (Chan/Pébay pairwise
    /// combination). The result is identical (up to rounding) to having
    /// pushed all observations into one accumulator.
    pub fn merge(&mut self, other: &Moments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let na = self.n as f64;
        let nb = other.n as f64;
        let n = na + nb;
        let delta = other.mean - self.mean;
        let delta2 = delta * delta;
        let delta3 = delta2 * delta;
        let delta4 = delta2 * delta2;

        let m4 = self.m4
            + other.m4
            + delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n)
            + 6.0 * delta2 * (na * na * other.m2 + nb * nb * self.m2) / (n * n)
            + 4.0 * delta * (na * other.m3 - nb * self.m3) / n;
        let m3 = self.m3
            + other.m3
            + delta3 * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n;
        let m2 = self.m2 + other.m2 + delta2 * na * nb / n;
        let mean = self.mean + delta * nb / n;

        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.m3 = m3;
        self.m4 = m4;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean; NaN when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Minimum observation; NaN when empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Maximum observation; NaN when empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Population variance (divides by n); NaN when empty.
    ///
    /// The paper treats its one-hour trace as the *complete parent
    /// population* (§4) and uses population parameters directly, so
    /// population variance is the primary variant here.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (divides by n-1); NaN when n < 2.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n as f64 - 1.0)
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Skewness `g1 = sqrt(n)·m3 / m2^(3/2)`; NaN when undefined
    /// (fewer than 2 points or zero variance).
    #[must_use]
    pub fn skewness(&self) -> f64 {
        if self.n < 2 || self.m2 <= 0.0 {
            return f64::NAN;
        }
        (self.n as f64).sqrt() * self.m3 / self.m2.powf(1.5)
    }

    /// Plain (non-excess) kurtosis `b2 = n·m4 / m2²`; 3 for a normal
    /// population. The paper's Table 2 reports this convention
    /// (packet-rate kurtosis 4.95, i.e. heavier-tailed than normal).
    #[must_use]
    pub fn kurtosis(&self) -> f64 {
        if self.n < 2 || self.m2 <= 0.0 {
            return f64::NAN;
        }
        self.n as f64 * self.m4 / (self.m2 * self.m2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn empty_accumulator_is_nan() {
        let m = Moments::new();
        assert_eq!(m.count(), 0);
        assert!(m.mean().is_nan());
        assert!(m.variance().is_nan());
        assert!(m.min().is_nan());
        assert!(m.skewness().is_nan());
    }

    #[test]
    fn single_value() {
        let m = Moments::from_values([5.0]);
        assert_eq!(m.count(), 1);
        close(m.mean(), 5.0, 1e-15);
        close(m.variance(), 0.0, 1e-15);
        assert!(m.sample_variance().is_nan());
        assert_eq!(m.min(), 5.0);
        assert_eq!(m.max(), 5.0);
    }

    #[test]
    fn known_small_set() {
        // 2, 4, 4, 4, 5, 5, 7, 9: classic example with pop std = 2.
        let m = Moments::from_values([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        close(m.mean(), 5.0, 1e-12);
        close(m.variance(), 4.0, 1e-12);
        close(m.std_dev(), 2.0, 1e-12);
        close(m.sample_variance(), 32.0 / 7.0, 1e-12);
    }

    #[test]
    fn symmetric_data_has_zero_skew() {
        let m = Moments::from_values([-2.0, -1.0, 0.0, 1.0, 2.0]);
        close(m.skewness(), 0.0, 1e-12);
    }

    #[test]
    fn uniform_kurtosis() {
        // Discrete uniform on many points approaches kurtosis 1.8.
        let vals: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let m = Moments::from_values(vals);
        close(m.kurtosis(), 1.8, 1e-3);
    }

    #[test]
    fn constant_data_has_nan_shape_stats() {
        let m = Moments::from_values([3.0; 10]);
        close(m.variance(), 0.0, 1e-12);
        assert!(m.skewness().is_nan());
        assert!(m.kurtosis().is_nan());
    }

    #[test]
    fn right_skewed_data_positive_skew() {
        let m = Moments::from_values([1.0, 1.0, 1.0, 1.0, 10.0]);
        assert!(m.skewness() > 1.0);
    }

    #[test]
    fn merge_equals_single_pass() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64).collect();
        let whole = Moments::from_values(xs.iter().copied());
        let mut a = Moments::from_values(xs[..300].iter().copied());
        let b = Moments::from_values(xs[300..].iter().copied());
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        close(a.mean(), whole.mean(), 1e-9);
        close(a.variance(), whole.variance(), 1e-9);
        close(a.skewness(), whole.skewness(), 1e-9);
        close(a.kurtosis(), whole.kurtosis(), 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Moments::from_values([1.0, 2.0, 3.0]);
        let before = a;
        a.merge(&Moments::new());
        assert_eq!(a, before);
        let mut e = Moments::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn numerical_stability_large_offset() {
        // Same spread around a huge mean: naive sum-of-squares would
        // catastrophically cancel.
        let m = Moments::from_values([1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0]);
        close(m.mean(), 1e9 + 10.0, 1e-3);
        close(m.sample_variance(), 30.0, 1e-3);
    }
}
