//! Special functions: `ln Γ`, regularized incomplete gamma, `erf`.
//!
//! These are the numerical kernels behind the χ² distribution used by the
//! paper's goodness-of-fit testing (§5.2). Implementations follow the
//! classic Lanczos / series / continued-fraction constructions and are
//! accurate to ~1e-13 relative error over the ranges exercised here
//! (degrees of freedom 1..~100, statistics up to a few thousand).

/// Lanczos coefficients (g = 7, n = 9).
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
///
/// # Panics
/// Panics if `x <= 0` (poles and the reflection domain are not needed by
/// this workspace and indicate a caller bug).
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1-x) = π / sin(πx); keeps accuracy near 0.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = LANCZOS[0];
    let t = x + 7.5;
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a,x) / Γ(a)`.
///
/// `P(a, 0) = 0`, `P(a, ∞) = 1`. Uses the series expansion for
/// `x < a + 1` and the continued fraction otherwise.
///
/// # Panics
/// Panics if `a <= 0` or `x < 0`.
#[must_use]
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_p requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 - P(a, x)`.
///
/// # Panics
/// Panics if `a <= 0` or `x < 0`.
#[must_use]
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_q requires x >= 0, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

const MAX_ITER: usize = 500;
const EPS: f64 = 1e-15;

/// Series representation of P(a, x), valid and fast for x < a + 1.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction representation of Q(a, x) (modified Lentz), valid
/// for x >= a + 1.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let fpmin = f64::MIN_POSITIVE / EPS;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / fpmin;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < fpmin {
            d = fpmin;
        }
        c = b + an / c;
        if c.abs() < fpmin {
            c = fpmin;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Error function `erf(x)`, computed from the incomplete gamma:
/// `erf(x) = sign(x) · P(1/2, x²)`.
#[must_use]
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let p = gamma_p(0.5, x * x);
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// Complementary error function `erfc(x) = 1 - erf(x)`.
#[must_use]
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        gamma_q(0.5, x * x)
    } else {
        1.0 + gamma_p(0.5, x * x)
    }
}

/// Standard normal cumulative distribution function Φ(z).
#[must_use]
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

/// Inverse of the standard normal CDF (the z-value for a given lower-tail
/// probability), via the Acklam rational approximation refined by one
/// Newton step; absolute error below 1e-12 on (1e-12, 1-1e-12).
///
/// This supplies the z-values of the paper's §5.1 sample-size formula
/// (z = 1.96 at 95% confidence).
///
/// # Panics
/// Panics unless `0 < p < 1`.
#[must_use]
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal_quantile requires 0 < p < 1");
    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Newton refinement using the analytic CDF/PDF.
    let e = normal_cdf(x) - p;
    let pdf = (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
    x - e / pdf
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_integers() {
        // Γ(n) = (n-1)!
        let facts = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (i, &f) in facts.iter().enumerate() {
            close(ln_gamma((i + 1) as f64), f64::ln(f), 1e-12);
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(pi)
        close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-12);
        // Γ(3/2) = sqrt(pi)/2
        close(
            ln_gamma(1.5),
            0.5 * std::f64::consts::PI.ln() - std::f64::consts::LN_2,
            1e-12,
        );
    }

    #[test]
    fn ln_gamma_large_argument() {
        // Stirling check at x = 100: ln(99!) known value.
        close(ln_gamma(100.0), 359.134_205_369_575_4, 1e-9);
    }

    #[test]
    #[should_panic(expected = "requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    fn gamma_p_boundaries() {
        assert_eq!(gamma_p(2.5, 0.0), 0.0);
        assert_eq!(gamma_q(2.5, 0.0), 1.0);
        close(gamma_p(1.0, 1e6), 1.0, 1e-12);
    }

    #[test]
    fn gamma_p_exponential_identity() {
        // P(1, x) = 1 - exp(-x)
        for x in [0.1, 0.5, 1.0, 2.0, 10.0] {
            close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
    }

    #[test]
    fn gamma_p_q_complementary() {
        for a in [0.5, 1.0, 2.5, 10.0, 50.0] {
            for x in [0.1, 1.0, 5.0, 25.0, 100.0] {
                close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12);
            }
        }
    }

    #[test]
    fn erf_reference_values() {
        close(erf(0.0), 0.0, 1e-15);
        close(erf(1.0), 0.842_700_792_949_714_9, 1e-12);
        close(erf(-1.0), -0.842_700_792_949_714_9, 1e-12);
        close(erf(2.0), 0.995_322_265_018_952_7, 1e-12);
        close(erfc(1.0), 0.157_299_207_050_285_1, 1e-12);
        close(erfc(-0.5) + erfc(0.5), 2.0 - 0.0, 1e-12); // erfc(-x) = 2 - erfc(x)
    }

    #[test]
    fn normal_cdf_reference_values() {
        close(normal_cdf(0.0), 0.5, 1e-14);
        close(normal_cdf(1.96), 0.975_002_104_851_780_4, 1e-10);
        close(normal_cdf(-1.96), 1.0 - 0.975_002_104_851_780_4, 1e-10);
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for p in [0.001, 0.025, 0.05, 0.5, 0.9, 0.975, 0.999] {
            close(normal_cdf(normal_quantile(p)), p, 1e-12);
        }
        // The paper's z for 95% two-sided confidence.
        close(normal_quantile(0.975), 1.959_963_984_540_054, 1e-9);
    }

    #[test]
    #[should_panic(expected = "0 < p < 1")]
    fn normal_quantile_rejects_bounds() {
        let _ = normal_quantile(1.0);
    }
}
