//! Kolmogorov–Smirnov tests.
//!
//! The paper (§5.2) cites K-S as a goodness-of-fit alternative that "has
//! proven difficult to apply to wide-area network traffic data". We
//! implement it anyway: the two-sample test lets the workspace *show*
//! that difficulty (heavily discretized distributions — 400 µs clock
//! ticks, a handful of dominant packet sizes — violate K-S's continuity
//! assumption, making it grossly conservative or anticonservative).

/// Result of a Kolmogorov–Smirnov test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsTest {
    /// The K-S statistic `D = sup |F₁ − F₂|`.
    pub statistic: f64,
    /// Asymptotic p-value (Kolmogorov distribution with the Stephens
    /// small-sample correction).
    pub p_value: f64,
    /// Effective sample size `n₁n₂/(n₁+n₂)` used for the asymptotics.
    pub effective_n: f64,
}

impl KsTest {
    /// Whether the hypothesis of a common distribution is rejected at
    /// level `alpha`.
    #[must_use]
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Kolmogorov distribution tail `Q(λ) = 2 Σ_{j≥1} (−1)^{j−1} e^{−2j²λ²}`.
fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64) * (j as f64) * lambda * lambda).exp();
        sum += sign * term;
        if term < 1e-16 {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Two-sample K-S test on unsorted data.
///
/// # Panics
/// Panics if either sample is empty.
#[must_use]
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> KsTest {
    assert!(
        !a.is_empty() && !b.is_empty(),
        "K-S requires nonempty samples"
    );
    let mut xs = a.to_vec();
    let mut ys = b.to_vec();
    xs.sort_by(f64::total_cmp);
    ys.sort_by(f64::total_cmp);

    let (n1, n2) = (xs.len(), ys.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < n1 && j < n2 {
        let x = xs[i].min(ys[j]);
        // Advance past all points equal to x in each sample (handles the
        // heavy ties of discretized traffic data consistently).
        while i < n1 && xs[i] <= x {
            i += 1;
        }
        while j < n2 && ys[j] <= x {
            j += 1;
        }
        let f1 = i as f64 / n1 as f64;
        let f2 = j as f64 / n2 as f64;
        d = d.max((f1 - f2).abs());
    }
    let ne = (n1 as f64 * n2 as f64) / (n1 as f64 + n2 as f64);
    let sqrt_ne = ne.sqrt();
    let lambda = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d;
    KsTest {
        statistic: d,
        p_value: kolmogorov_q(lambda),
        effective_n: ne,
    }
}

/// One-sample K-S test of data against a reference CDF.
///
/// # Panics
/// Panics if `data` is empty.
#[must_use]
pub fn ks_one_sample<F: Fn(f64) -> f64>(data: &[f64], cdf: F) -> KsTest {
    assert!(!data.is_empty(), "K-S requires a nonempty sample");
    let mut xs = data.to_vec();
    xs.sort_by(f64::total_cmp);
    let n = xs.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        let f = cdf(x);
        let f_lo = i as f64 / n;
        let f_hi = (i + 1) as f64 / n;
        d = d.max((f - f_lo).abs()).max((f_hi - f).abs());
    }
    let sqrt_n = n.sqrt();
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    KsTest {
        statistic: d,
        p_value: kolmogorov_q(lambda),
        effective_n: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_have_zero_statistic() {
        let a: Vec<f64> = (0..100).map(f64::from).collect();
        let t = ks_two_sample(&a, &a);
        assert_eq!(t.statistic, 0.0);
        assert!((t.p_value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_samples_have_statistic_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 11.0, 12.0];
        let t = ks_two_sample(&a, &b);
        assert!((t.statistic - 1.0).abs() < 1e-12);
        assert!(t.p_value < 0.1);
    }

    #[test]
    fn shifted_uniforms_are_detected() {
        let a: Vec<f64> = (0..500).map(|i| i as f64 / 500.0).collect();
        let b: Vec<f64> = (0..500).map(|i| i as f64 / 500.0 + 0.3).collect();
        let t = ks_two_sample(&a, &b);
        assert!(t.rejects_at(0.001), "D = {}", t.statistic);
    }

    #[test]
    fn same_distribution_usually_accepted() {
        // Deterministic interleaved picks from the same grid.
        let a: Vec<f64> = (0..400).map(|i| (i * 2) as f64).collect();
        let b: Vec<f64> = (0..400).map(|i| (i * 2 + 1) as f64).collect();
        let t = ks_two_sample(&a, &b);
        assert!(!t.rejects_at(0.05), "p = {}", t.p_value);
    }

    #[test]
    fn one_sample_against_uniform_cdf() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64 + 0.5) / 1000.0).collect();
        let t = ks_one_sample(&data, |x| x.clamp(0.0, 1.0));
        assert!(t.statistic < 0.01);
        assert!(!t.rejects_at(0.05));
    }

    #[test]
    fn one_sample_against_wrong_cdf_rejects() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64 + 0.5) / 1000.0).collect();
        // Claim the data is concentrated near zero.
        let t = ks_one_sample(&data, |x| (5.0 * x).min(1.0));
        assert!(t.rejects_at(0.001));
    }

    #[test]
    fn effective_n_formula() {
        let a = [1.0, 2.0];
        let b = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let t = ks_two_sample(&a, &b);
        assert!((t.effective_n - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_sample_panics() {
        let _ = ks_two_sample(&[], &[1.0]);
    }

    #[test]
    fn kolmogorov_q_monotone() {
        let mut last = 1.0;
        for i in 1..=30 {
            let q = kolmogorov_q(i as f64 * 0.1);
            assert!(q <= last + 1e-12);
            last = q;
        }
        assert!(kolmogorov_q(0.0) == 1.0);
        assert!(kolmogorov_q(3.0) < 1e-6);
    }
}
