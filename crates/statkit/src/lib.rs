//! # statkit — self-contained statistics toolkit
//!
//! Statistical machinery for the SIGCOMM 1993 sampling-methodology
//! reproduction. Everything the paper's evaluation needs is implemented
//! here from scratch (no external statistics dependency):
//!
//! * streaming central moments — mean, variance, skewness, kurtosis
//!   ([`moments`]), as reported in the paper's Table 2;
//! * exact quantiles and summary rows ([`mod@quantile`], [`summary`]) matching
//!   the Table 2/3 format (min/5%/25%/median/75%/95%/max/mean/σ);
//! * special functions ([`special`]): `ln Γ`, regularized incomplete gamma,
//!   `erf` — the numerical basis of the χ² distribution;
//! * Pearson's χ² test with p-values ([`chi2`]), the test the paper applies
//!   to its 1-in-50 systematic samples (§5.2, §6);
//! * Kolmogorov–Smirnov and Anderson–Darling tests ([`ks`], [`ad`]) — the
//!   alternatives the paper cites as "difficult to apply to wide-area
//!   network traffic data";
//! * boxplot five-number summaries with 1.5·IQR whiskers ([`boxplot`]),
//!   matching the paper's Figure 6 footnote;
//! * seeded random distributions ([`rand_ext`]) used by the synthetic
//!   workload generator.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod acf;
pub mod ad;
pub mod boxplot;
pub mod chi2;
pub mod inversion;
pub mod ks;
pub mod moments;
pub mod quantile;
pub mod rand_ext;
pub mod special;
pub mod summary;

pub use acf::{acf, lag1, white_noise_band};
pub use ad::AndersonDarling;
pub use boxplot::Boxplot;
pub use chi2::{chi2_cdf, chi2_sf, Chi2Error, Chi2Test};
pub use inversion::{
    detection_probability, em_invert, em_invert_with, naive_scaling, syn_flow_count, tail_rescale,
    EmConfig, FlowEstimate, InversionError,
};
pub use ks::{ks_two_sample, KsTest};
pub use moments::Moments;
pub use quantile::{quantile, quantile_sorted};
pub use summary::SummaryRow;
