//! The χ² distribution and Pearson's χ² goodness-of-fit test.
//!
//! This is the statistical backbone of the paper's §5.2: the χ² statistic
//! over binned counts, its significance level from the χ² distribution
//! with `bins − 1 − fitted` degrees of freedom, and the 0.05-level
//! decision applied to the 1-in-50 systematic samples in §6.

use crate::special::{gamma_p, gamma_q};
use std::fmt;

/// Degenerate input to a χ² test, reported instead of aborting by
/// [`Chi2Test::try_from_counts`]. `Display` messages match the historic
/// panic messages of [`Chi2Test::from_counts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Chi2Error {
    /// Observed and expected slices differ in length.
    LengthMismatch {
        /// Number of observed bins.
        observed: usize,
        /// Number of expected bins.
        expected: usize,
    },
    /// An expected count below zero.
    NegativeExpected,
    /// Fewer than two bins with positive expected counts.
    TooFewBins {
        /// Bins with positive expected counts.
        usable: u32,
    },
    /// Fitting parameters consumed every degree of freedom.
    NoDegreesOfFreedom,
    /// Observed counts produced a NaN or infinite statistic.
    NonFiniteStatistic,
}

impl fmt::Display for Chi2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Chi2Error::LengthMismatch { observed, expected } => write!(
                f,
                "observed/expected bin counts differ in length ({observed} vs {expected})"
            ),
            Chi2Error::NegativeExpected => write!(f, "expected counts cannot be negative"),
            Chi2Error::TooFewBins { usable } => write!(
                f,
                "chi-square test needs at least two bins with expected counts (got {usable})"
            ),
            Chi2Error::NoDegreesOfFreedom => {
                write!(f, "no degrees of freedom left after fitting")
            }
            Chi2Error::NonFiniteStatistic => {
                write!(
                    f,
                    "observed counts produced a non-finite chi-square statistic"
                )
            }
        }
    }
}

impl std::error::Error for Chi2Error {}

/// χ² cumulative distribution function with `df` degrees of freedom.
///
/// # Panics
/// Panics if `df` is zero or `x` is negative.
#[must_use]
pub fn chi2_cdf(df: u32, x: f64) -> f64 {
    assert!(df > 0, "chi-square requires df >= 1");
    assert!(x >= 0.0, "chi-square statistic cannot be negative");
    gamma_p(f64::from(df) / 2.0, x / 2.0)
}

/// χ² survival function (upper tail): the p-value of a χ² statistic.
///
/// # Panics
/// Panics if `df` is zero or `x` is negative.
#[must_use]
pub fn chi2_sf(df: u32, x: f64) -> f64 {
    assert!(df > 0, "chi-square requires df >= 1");
    assert!(x >= 0.0, "chi-square statistic cannot be negative");
    let _span = obskit::span("statkit_chi2_sf");
    gamma_q(f64::from(df) / 2.0, x / 2.0)
}

/// χ² quantile (inverse CDF) by bisection; accurate to ~1e-10.
///
/// # Panics
/// Panics unless `0 < p < 1` and `df >= 1`.
#[must_use]
pub fn chi2_quantile(df: u32, p: f64) -> f64 {
    assert!(df > 0, "chi-square requires df >= 1");
    assert!(p > 0.0 && p < 1.0, "quantile requires 0 < p < 1");
    let mut lo = 0.0;
    let mut hi = f64::from(df).max(1.0);
    while chi2_cdf(df, hi) < p {
        hi *= 2.0;
        assert!(hi.is_finite(), "chi2_quantile bracket failed");
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if chi2_cdf(df, mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-12 * hi.max(1.0) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Result of a Pearson χ² goodness-of-fit test.
///
/// ```
/// use statkit::Chi2Test;
/// // Observed vs expected over three bins.
/// let t = Chi2Test::from_counts(&[48.0, 35.0, 17.0], &[50.0, 30.0, 20.0], 0);
/// assert_eq!(t.df, 2);
/// assert!(!t.rejects_at(0.05)); // consistent with the expectation
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Chi2Test {
    /// The χ² statistic `Σ (Oᵢ − Eᵢ)² / Eᵢ`.
    pub statistic: f64,
    /// Degrees of freedom used (`bins − 1 − fitted_params`).
    pub df: u32,
    /// Upper-tail p-value.
    pub p_value: f64,
}

impl Chi2Test {
    /// Pearson χ² test of observed counts against expected counts.
    ///
    /// Bins with zero expected count are skipped (they carry no
    /// information and would divide by zero); the degrees of freedom are
    /// reduced accordingly. `fitted_params` is the number of parameters
    /// estimated from the data (0 in this workspace: the parent population
    /// is fully known, paper §4).
    ///
    /// # Panics
    /// Panics if the slices differ in length, if fewer than two usable
    /// bins remain, or if any expected count is negative.
    #[must_use]
    pub fn from_counts(observed: &[f64], expected: &[f64], fitted_params: u32) -> Chi2Test {
        match Self::try_from_counts(observed, expected, fitted_params) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Chi2Test::from_counts`]: degenerate inputs (mismatched
    /// slices, negative expectations, fewer than two usable bins, no
    /// degrees of freedom) come back as a typed [`Chi2Error`] instead of
    /// aborting the process — the variant to use on untrusted or
    /// machine-generated bin counts.
    ///
    /// # Errors
    /// Returns the first [`Chi2Error`] the input trips.
    pub fn try_from_counts(
        observed: &[f64],
        expected: &[f64],
        fitted_params: u32,
    ) -> Result<Chi2Test, Chi2Error> {
        if observed.len() != expected.len() {
            return Err(Chi2Error::LengthMismatch {
                observed: observed.len(),
                expected: expected.len(),
            });
        }
        let mut stat = 0.0;
        let mut used = 0u32;
        for (&o, &e) in observed.iter().zip(expected) {
            // `!(e >= 0.0)` rather than `e < 0.0`: NaN expectations must
            // fail this check too, and NaN compares false both ways.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(e >= 0.0) {
                return Err(Chi2Error::NegativeExpected);
            }
            if e > 0.0 {
                let d = o - e;
                stat += d * d / e;
                used += 1;
            }
        }
        if used < 2 {
            return Err(Chi2Error::TooFewBins { usable: used });
        }
        if fitted_params >= used - 1 {
            // from_counts used to underflow `used - 1 - fitted_params`
            // here rather than reach its df assert.
            return Err(Chi2Error::NoDegreesOfFreedom);
        }
        if !stat.is_finite() {
            // NaN/∞ observed counts would otherwise trip chi2_sf's
            // nonnegativity assert downstream.
            return Err(Chi2Error::NonFiniteStatistic);
        }
        let df = used - 1 - fitted_params;
        if obskit::recording_enabled() {
            obskit::counter("statkit_chi2_tests_total").inc();
            obskit::counter("statkit_chi2_cells_evaluated_total").add(u64::from(used));
        }
        Ok(Chi2Test {
            statistic: stat,
            df,
            p_value: chi2_sf(df, stat),
        })
    }

    /// Whether the null hypothesis (sample drawn from the reference
    /// distribution) is rejected at significance level `alpha`.
    #[must_use]
    pub fn rejects_at(&self, alpha: f64) -> bool {
        let rejected = self.p_value < alpha;
        if rejected && obskit::recording_enabled() {
            obskit::counter("statkit_chi2_rejections_total").inc();
        }
        rejected
    }

    /// The paper plots `1 − significance level` for ease of comparison
    /// (Figure 3); this is that quantity.
    #[must_use]
    pub fn one_minus_significance(&self) -> f64 {
        1.0 - self.p_value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn cdf_reference_values() {
        // chi2 with 2 df is Exp(1/2): CDF(x) = 1 - exp(-x/2).
        for x in [0.5, 1.0, 2.0, 5.0] {
            close(chi2_cdf(2, x), 1.0 - (-x / 2.0).exp(), 1e-12);
        }
        // Known upper critical value: P(chi2_1 > 3.841) ~ 0.05.
        close(chi2_sf(1, 3.841_458_820_694_124), 0.05, 1e-9);
        // P(chi2_4 > 9.487729) ~ 0.05 (df for the 5 interarrival bins).
        close(chi2_sf(4, 9.487_729_036_781_154), 0.05, 1e-9);
        // P(chi2_2 > 5.991465) ~ 0.05 (df for the 3 packet-size bins).
        close(chi2_sf(2, 5.991_464_547_107_979), 0.05, 1e-9);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for df in [1u32, 2, 4, 10, 49] {
            for p in [0.01, 0.05, 0.5, 0.95, 0.99] {
                let x = chi2_quantile(df, p);
                close(chi2_cdf(df, x), p, 1e-9);
            }
        }
    }

    #[test]
    fn perfect_fit_has_zero_statistic() {
        let t = Chi2Test::from_counts(&[10.0, 20.0, 30.0], &[10.0, 20.0, 30.0], 0);
        assert_eq!(t.statistic, 0.0);
        assert_eq!(t.df, 2);
        close(t.p_value, 1.0, 1e-12);
        assert!(!t.rejects_at(0.05));
    }

    #[test]
    fn textbook_example() {
        // Classic die example: observed [16,18,16,14,12,12], expected 88/6 each.
        let e = 88.0 / 6.0;
        let t = Chi2Test::from_counts(
            &[16.0, 18.0, 16.0, 14.0, 12.0, 12.0],
            &[e, e, e, e, e, e],
            0,
        );
        close(t.statistic, 2.0, 1e-9);
        assert_eq!(t.df, 5);
        assert!(!t.rejects_at(0.05));
    }

    #[test]
    fn gross_misfit_rejects() {
        let t = Chi2Test::from_counts(&[100.0, 0.0], &[50.0, 50.0], 0);
        assert!(t.statistic > 90.0);
        assert!(t.rejects_at(0.001));
        assert!(t.one_minus_significance() > 0.999);
    }

    #[test]
    fn zero_expected_bins_are_skipped() {
        let t = Chi2Test::from_counts(&[10.0, 0.0, 10.0], &[10.0, 0.0, 10.0], 0);
        assert_eq!(t.df, 1); // only two usable bins
        assert_eq!(t.statistic, 0.0);
    }

    #[test]
    #[should_panic(expected = "differ in length")]
    fn mismatched_lengths_panic() {
        let _ = Chi2Test::from_counts(&[1.0], &[1.0, 2.0], 0);
    }

    #[test]
    #[should_panic(expected = "at least two bins")]
    fn degenerate_bins_panic() {
        let _ = Chi2Test::from_counts(&[5.0, 3.0], &[8.0, 0.0], 0);
    }

    #[test]
    fn try_from_counts_reports_degenerate_inputs() {
        assert_eq!(
            Chi2Test::try_from_counts(&[1.0], &[1.0, 2.0], 0),
            Err(Chi2Error::LengthMismatch {
                observed: 1,
                expected: 2
            })
        );
        assert_eq!(
            Chi2Test::try_from_counts(&[5.0, 3.0], &[8.0, -1.0], 0),
            Err(Chi2Error::NegativeExpected)
        );
        assert_eq!(
            Chi2Test::try_from_counts(&[5.0, 3.0], &[8.0, f64::NAN], 0),
            Err(Chi2Error::NegativeExpected)
        );
        assert_eq!(
            Chi2Test::try_from_counts(&[5.0, 3.0], &[8.0, 0.0], 0),
            Err(Chi2Error::TooFewBins { usable: 1 })
        );
        assert_eq!(
            Chi2Test::try_from_counts(&[], &[], 0),
            Err(Chi2Error::TooFewBins { usable: 0 })
        );
        // fitted_params >= usable - 1 used to underflow the df
        // subtraction instead of reaching the df assert.
        assert_eq!(
            Chi2Test::try_from_counts(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0], 2),
            Err(Chi2Error::NoDegreesOfFreedom)
        );
        assert_eq!(
            Chi2Test::try_from_counts(&[f64::NAN, 2.0], &[1.0, 2.0], 0),
            Err(Chi2Error::NonFiniteStatistic)
        );
        // A valid input round-trips identically through both paths.
        let a = Chi2Test::try_from_counts(&[48.0, 35.0, 17.0], &[50.0, 30.0, 20.0], 0).unwrap();
        let b = Chi2Test::from_counts(&[48.0, 35.0, 17.0], &[50.0, 30.0, 20.0], 0);
        assert_eq!(a, b);
    }
}
