//! Incremental, bounded-memory capture reader.
//!
//! [`read_capture`](crate::read_capture) materializes the whole trace
//! before returning — fine for offline analysis, wrong for the
//! operational monitor the paper describes (§2: the NSFNET routers
//! sample a *stream*, they never hold the day's 650 MB in memory).
//! [`CaptureStream`] yields packets (or bounded batches) one record at
//! a time from any [`Read`] source, in **file order**, holding only the
//! current record plus O(1) decoder state.
//!
//! The decoders are the *same functions* the strict batch readers use
//! ([`crate::pcap::parse_ipv4`], [`crate::pcapng::parse_epb`], …), and
//! the error conditions mirror [`crate::pcap::read_pcap`] /
//! [`crate::pcapng::read_pcapng`] case for case, so the streaming and
//! batch parses cannot drift: on any input, the stream yields exactly
//! the packets the batch reader would collect (before its defensive
//! timestamp sort) and fails with the same [`TraceError`] class.

use crate::error::TraceError;
use crate::packet::PacketRecord;
use crate::pcap::{self, read_exact_or_eof, ReadOutcome};
use crate::pcapng::{self, parse_epb, parse_idb, parse_spb, Interface};
use crate::time::Micros;
use std::io::Read;

/// Per-format decoder state.
enum Format {
    Pcap {
        endian: pcap::Endian,
        nanos: bool,
    },
    Pcapng {
        endian: pcapng::Endian,
        interfaces: Vec<Interface>,
        /// No block parsed yet: EOF here means "not a capture at all".
        first: bool,
        /// Timestamp of the last yielded packet (SPBs carry none).
        last_ts: Micros,
    },
}

/// One-pass incremental reader over a pcap or pcapng byte stream.
///
/// Construction sniffs the format from the first bytes; each
/// [`next_packet`](CaptureStream::next_packet) call consumes exactly one
/// record (skipping non-packet pcapng blocks), so memory is bounded by
/// the largest single record regardless of capture size.
///
/// Unlike the batch readers, packets arrive in **file order** — the
/// defensive timestamp sort of [`Trace::from_unordered`]
/// (crate::trace::Trace::from_unordered) is a whole-trace operation a
/// one-pass reader cannot perform. Callers needing sorted output must
/// window-and-sort downstream.
///
/// After the stream ends or fails, further calls return `Ok(None)`
/// (the reader is fused).
pub struct CaptureStream<R> {
    reader: R,
    /// Sniffed bytes not yet consumed by the decoder (pcapng pushback).
    head: Vec<u8>,
    head_pos: usize,
    format: Format,
    packets_read: usize,
    /// Bytes consumed from the stream by fully-read structures.
    consumed: u64,
    /// Offset of the structure being decoded when an error occurred.
    fault_offset: Option<u64>,
    done: bool,
}

impl<R: Read> CaptureStream<R> {
    /// Sniff the stream's format and prepare to yield packets.
    ///
    /// # Errors
    /// Exactly the header-stage errors of the batch readers:
    /// [`TraceError::TruncatedRecord`] (`packets_read: 0`) if the stream
    /// ends inside the magic or the classic 24-byte global header,
    /// [`TraceError::BadMagic`] if it is neither format.
    pub fn new(mut reader: R) -> Result<Self, TraceError> {
        let mut magic = [0u8; 4];
        if !matches!(
            read_exact_or_eof(&mut reader, &mut magic),
            ReadOutcome::Full
        ) {
            return Err(TraceError::TruncatedRecord { packets_read: 0 });
        }
        if u32::from_le_bytes(magic) == pcapng::SHB_TYPE {
            // The 4 sniffed bytes are the first half of the first block
            // header: push them back for the block loop.
            return Ok(CaptureStream {
                reader,
                head: magic.to_vec(),
                head_pos: 0,
                format: Format::Pcapng {
                    endian: pcapng::Endian::Little,
                    interfaces: Vec::new(),
                    first: true,
                    last_ts: Micros::ZERO,
                },
                packets_read: 0,
                consumed: 0,
                fault_offset: None,
                done: false,
            });
        }
        let Some((endian, nanos)) = pcap::sniff_magic(magic) else {
            return Err(TraceError::BadMagic(u32::from_le_bytes(magic)));
        };
        // Remainder of the classic 24-byte global header.
        let mut rest = [0u8; 20];
        if !matches!(read_exact_or_eof(&mut reader, &mut rest), ReadOutcome::Full) {
            return Err(TraceError::TruncatedRecord { packets_read: 0 });
        }
        Ok(CaptureStream {
            reader,
            head: Vec::new(),
            head_pos: 0,
            format: Format::Pcap { endian, nanos },
            packets_read: 0,
            consumed: 24,
            fault_offset: None,
            done: false,
        })
    }

    /// `"pcap"` or `"pcapng"`.
    #[must_use]
    pub fn format(&self) -> &'static str {
        match self.format {
            Format::Pcap { .. } => "pcap",
            Format::Pcapng { .. } => "pcapng",
        }
    }

    /// Packets yielded so far.
    #[must_use]
    pub fn packets_read(&self) -> usize {
        self.packets_read
    }

    /// Bytes of the stream consumed by fully-decoded structures.
    #[must_use]
    pub fn byte_offset(&self) -> u64 {
        self.consumed
    }

    /// Byte offset of the structure that failed to decode, if the
    /// stream has failed — the same offset [`crate::lossy::salvage`]
    /// would report for its first fault.
    #[must_use]
    pub fn fault_offset(&self) -> Option<u64> {
        self.fault_offset
    }

    /// Read with sniffed-byte pushback, counting consumed bytes only
    /// when the structure read completes.
    fn fill(&mut self, buf: &mut [u8]) -> ReadOutcome {
        let mut filled = 0;
        if self.head_pos < self.head.len() {
            let n = (self.head.len() - self.head_pos).min(buf.len());
            buf[..n].copy_from_slice(&self.head[self.head_pos..self.head_pos + n]);
            self.head_pos += n;
            filled = n;
        }
        let out = if filled == buf.len() {
            ReadOutcome::Full
        } else {
            match read_exact_or_eof(&mut self.reader, &mut buf[filled..]) {
                ReadOutcome::Full => ReadOutcome::Full,
                ReadOutcome::Eof if filled == 0 => ReadOutcome::Eof,
                _ => ReadOutcome::Partial,
            }
        };
        if matches!(out, ReadOutcome::Full) {
            self.consumed += buf.len() as u64;
        }
        out
    }

    fn fail(&mut self, at: u64, error: TraceError) -> TraceError {
        self.done = true;
        self.fault_offset = Some(at);
        error
    }

    fn truncated(&mut self, at: u64) -> TraceError {
        let packets_read = self.packets_read;
        self.fail(at, TraceError::TruncatedRecord { packets_read })
    }

    /// Yield the next packet, or `Ok(None)` at clean end of stream.
    ///
    /// # Errors
    /// The same classes, under the same conditions, as the batch
    /// readers: [`TraceError::TruncatedRecord`] when the stream ends
    /// mid-structure, [`TraceError::OversizedRecord`] on an implausible
    /// length field, [`TraceError::BadMagic`] on a corrupt pcapng
    /// section header. [`fault_offset`](CaptureStream::fault_offset)
    /// then reports where. After an error the stream is fused.
    pub fn next_packet(&mut self) -> Result<Option<PacketRecord>, TraceError> {
        if self.done {
            return Ok(None);
        }
        match self.format {
            Format::Pcap { endian, nanos } => self.next_pcap(endian, nanos),
            Format::Pcapng { .. } => self.next_pcapng(),
        }
    }

    fn next_pcap(
        &mut self,
        endian: pcap::Endian,
        nanos: bool,
    ) -> Result<Option<PacketRecord>, TraceError> {
        let start = self.consumed;
        let mut rec_hdr = [0u8; 16];
        match self.fill(&mut rec_hdr) {
            ReadOutcome::Eof => {
                self.done = true;
                return Ok(None);
            }
            ReadOutcome::Partial => return Err(self.truncated(start)),
            ReadOutcome::Full => {}
        }
        let sec = pcap::u32_from(endian, [rec_hdr[0], rec_hdr[1], rec_hdr[2], rec_hdr[3]]);
        let frac = pcap::u32_from(endian, [rec_hdr[4], rec_hdr[5], rec_hdr[6], rec_hdr[7]]);
        let caplen = pcap::u32_from(endian, [rec_hdr[8], rec_hdr[9], rec_hdr[10], rec_hdr[11]]);
        let orig_len = pcap::u32_from(endian, [rec_hdr[12], rec_hdr[13], rec_hdr[14], rec_hdr[15]]);
        if caplen > pcap::MAX_CAPLEN {
            return Err(self.fail(start, TraceError::OversizedRecord { caplen }));
        }
        let mut data = vec![0u8; caplen as usize];
        if !matches!(self.fill(&mut data), ReadOutcome::Full) {
            return Err(self.truncated(start));
        }
        let usec = if nanos {
            u64::from(frac) / 1000
        } else {
            u64::from(frac)
        };
        let ts = Micros(u64::from(sec) * 1_000_000 + usec);
        self.packets_read += 1;
        Ok(Some(pcap::parse_ipv4(&data, orig_len, ts)))
    }

    fn next_pcapng(&mut self) -> Result<Option<PacketRecord>, TraceError> {
        loop {
            let start = self.consumed;
            let mut hdr = [0u8; 8];
            match self.fill(&mut hdr) {
                ReadOutcome::Eof => {
                    if matches!(self.format, Format::Pcapng { first: true, .. }) {
                        // A pcapng stream must open with a full SHB.
                        return Err(self.truncated(start));
                    }
                    self.done = true;
                    return Ok(None);
                }
                ReadOutcome::Partial => return Err(self.truncated(start)),
                ReadOutcome::Full => {}
            }
            let raw_type_le = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
            if matches!(self.format, Format::Pcapng { first: true, .. })
                && raw_type_le != pcapng::SHB_TYPE
            {
                return Err(self.fail(start, TraceError::BadMagic(raw_type_le)));
            }

            if raw_type_le == pcapng::SHB_TYPE {
                let mut bom = [0u8; 4];
                if !matches!(self.fill(&mut bom), ReadOutcome::Full) {
                    return Err(self.truncated(start));
                }
                let section_endian = if u32::from_le_bytes(bom) == pcapng::BOM {
                    pcapng::Endian::Little
                } else if u32::from_be_bytes(bom) == pcapng::BOM {
                    pcapng::Endian::Big
                } else {
                    return Err(self.fail(start, TraceError::BadMagic(u32::from_le_bytes(bom))));
                };
                let total_len = pcapng::u32_at(section_endian, &hdr[4..8]);
                if !(28..=pcapng::MAX_BLOCK).contains(&total_len) || !total_len.is_multiple_of(4) {
                    return Err(self.fail(start, TraceError::OversizedRecord { caplen: total_len }));
                }
                if let Err(e) = self.skip(total_len as usize - 12) {
                    return Err(self.fail(start, e));
                }
                if let Format::Pcapng {
                    endian,
                    interfaces,
                    first,
                    ..
                } = &mut self.format
                {
                    *endian = section_endian;
                    interfaces.clear();
                    *first = false;
                }
                continue;
            }

            let Format::Pcapng { endian, .. } = &self.format else {
                unreachable!("pcapng loop in pcap mode")
            };
            let endian = *endian;
            let block_type = pcapng::u32_at(endian, &hdr[0..4]);
            let total_len = pcapng::u32_at(endian, &hdr[4..8]);
            if !(12..=pcapng::MAX_BLOCK).contains(&total_len) || !total_len.is_multiple_of(4) {
                return Err(self.fail(start, TraceError::OversizedRecord { caplen: total_len }));
            }
            let mut body = vec![0u8; total_len as usize - 12];
            if !matches!(self.fill(&mut body), ReadOutcome::Full) {
                return Err(self.truncated(start));
            }
            let mut trailer = [0u8; 4];
            if !matches!(self.fill(&mut trailer), ReadOutcome::Full) {
                return Err(self.truncated(start));
            }

            let Format::Pcapng {
                interfaces,
                last_ts,
                ..
            } = &mut self.format
            else {
                unreachable!("pcapng loop in pcap mode")
            };
            let packet = match block_type {
                pcapng::IDB_TYPE => {
                    if let Some(iface) = parse_idb(endian, &body) {
                        interfaces.push(iface);
                    }
                    None
                }
                pcapng::EPB_TYPE => parse_epb(endian, &body, interfaces),
                pcapng::SPB_TYPE => parse_spb(endian, &body, *last_ts),
                _ => None,
            };
            if let Some(p) = packet {
                *last_ts = p.timestamp;
                self.packets_read += 1;
                return Ok(Some(p));
            }
        }
    }

    fn skip(&mut self, mut n: usize) -> Result<(), TraceError> {
        let mut buf = [0u8; 4096];
        while n > 0 {
            let take = n.min(buf.len());
            if !matches!(self.fill(&mut buf[..take]), ReadOutcome::Full) {
                return Err(TraceError::TruncatedRecord {
                    packets_read: self.packets_read,
                });
            }
            n -= take;
        }
        Ok(())
    }

    /// Append up to `max` packets to `out`, returning how many arrived.
    /// Returns `Ok(0)` only at clean end of stream.
    ///
    /// # Errors
    /// As [`next_packet`](CaptureStream::next_packet); packets decoded
    /// before the fault are kept in `out`.
    pub fn next_batch(
        &mut self,
        max: usize,
        out: &mut Vec<PacketRecord>,
    ) -> Result<usize, TraceError> {
        let mut got = 0;
        while got < max {
            match self.next_packet()? {
                Some(p) => {
                    out.push(p);
                    got += 1;
                }
                None => break,
            }
        }
        if got > 0 && obskit::recording_enabled() {
            obskit::counter_labeled(
                "nettrace_stream_packets_total",
                &[("format", self.format())],
            )
            .add(got as u64);
        }
        Ok(got)
    }

    /// Append up to `max` packets to the columns of `out`, returning
    /// how many arrived. The columnar sibling of
    /// [`next_batch`](CaptureStream::next_batch): element `i` of every
    /// column is packet `i`'s projection, in file order, so a chunked
    /// columnar decode sees exactly the packets a per-packet decode
    /// would. Returns `Ok(0)` only at clean end of stream.
    ///
    /// # Errors
    /// As [`next_packet`](CaptureStream::next_packet); packets decoded
    /// before the fault are kept in `out`.
    pub fn next_chunk(
        &mut self,
        max: usize,
        out: &mut crate::batch::PacketBatch,
    ) -> Result<usize, TraceError> {
        let mut got = 0;
        while got < max {
            match self.next_packet()? {
                Some(p) => {
                    out.push(&p);
                    got += 1;
                }
                None => break,
            }
        }
        if got > 0 && obskit::recording_enabled() {
            obskit::counter_labeled(
                "nettrace_stream_packets_total",
                &[("format", self.format())],
            )
            .add(got as u64);
        }
        Ok(got)
    }
}

impl<R: Read> Iterator for CaptureStream<R> {
    type Item = Result<PacketRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.next_packet() {
            Ok(Some(p)) => Some(Ok(p)),
            Ok(None) => None,
            Err(e) => Some(Err(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcap::write_pcap;
    use crate::trace::Trace;

    fn sample_trace(n: u64) -> Trace {
        Trace::new(
            (0..n)
                .map(|i| {
                    PacketRecord::new(Micros(i * 777), if i % 3 == 0 { 40 } else { 552 })
                        .with_ports(1024 + i as u16, 23)
                })
                .collect(),
        )
        .unwrap()
    }

    /// A reader that hands out one byte at a time — exercises every
    /// partial-read path in `fill`.
    struct Trickle<'a>(&'a [u8]);

    impl Read for Trickle<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.0.is_empty() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.0[0];
            self.0 = &self.0[1..];
            Ok(1)
        }
    }

    /// A minimal little-endian pcapng builder (mirrors the batch tests).
    struct NgBuilder {
        buf: Vec<u8>,
    }

    impl NgBuilder {
        fn new() -> Self {
            let mut b = NgBuilder { buf: Vec::new() };
            let mut body = Vec::new();
            body.extend_from_slice(&pcapng::BOM.to_le_bytes());
            body.extend_from_slice(&1u16.to_le_bytes());
            body.extend_from_slice(&0u16.to_le_bytes());
            body.extend_from_slice(&(-1i64).to_le_bytes());
            b.block(pcapng::SHB_TYPE, &body);
            b
        }

        fn block(&mut self, btype: u32, body: &[u8]) {
            let total = 12 + body.len() as u32;
            self.buf.extend_from_slice(&btype.to_le_bytes());
            self.buf.extend_from_slice(&total.to_le_bytes());
            self.buf.extend_from_slice(body);
            self.buf.extend_from_slice(&total.to_le_bytes());
        }

        fn idb(&mut self) {
            let mut body = Vec::new();
            body.extend_from_slice(&101u16.to_le_bytes());
            body.extend_from_slice(&0u16.to_le_bytes());
            body.extend_from_slice(&0u32.to_le_bytes());
            self.block(pcapng::IDB_TYPE, &body);
        }

        fn epb(&mut self, ticks: u64, size: u16) {
            let mut body = Vec::new();
            body.extend_from_slice(&0u32.to_le_bytes());
            body.extend_from_slice(&((ticks >> 32) as u32).to_le_bytes());
            body.extend_from_slice(&((ticks & 0xffff_ffff) as u32).to_le_bytes());
            body.extend_from_slice(&0u32.to_le_bytes()); // caplen 0
            body.extend_from_slice(&u32::from(size).to_le_bytes());
            self.block(pcapng::EPB_TYPE, &body);
        }

        fn spb(&mut self, size: u16) {
            let mut body = Vec::new();
            body.extend_from_slice(&u32::from(size).to_le_bytes());
            self.block(pcapng::SPB_TYPE, &body);
        }
    }

    #[test]
    fn streams_pcap_identically_to_batch() {
        let t = sample_trace(50);
        let mut buf = Vec::new();
        write_pcap(&mut buf, &t).unwrap();
        let batch = crate::read_capture(buf.as_slice()).unwrap();

        let mut s = CaptureStream::new(buf.as_slice()).unwrap();
        assert_eq!(s.format(), "pcap");
        let streamed: Vec<PacketRecord> = (&mut s).map(|r| r.unwrap()).collect();
        assert_eq!(streamed, batch.packets());
        assert_eq!(s.packets_read(), 50);
        assert_eq!(s.byte_offset(), buf.len() as u64);
        assert!(s.fault_offset().is_none());
        // Fused after end.
        assert!(s.next_packet().unwrap().is_none());
    }

    #[test]
    fn streams_pcapng_identically_to_batch() {
        let mut b = NgBuilder::new();
        b.idb();
        for i in 0..10u64 {
            b.epb(1_000 * i, 40 + i as u16);
        }
        b.spb(576); // no timestamp: rides on the previous packet's
        let batch = crate::read_capture(b.buf.as_slice()).unwrap();

        let mut s = CaptureStream::new(b.buf.as_slice()).unwrap();
        assert_eq!(s.format(), "pcapng");
        let streamed: Vec<PacketRecord> = (&mut s).map(|r| r.unwrap()).collect();
        // This capture is in timestamp order, so file order == sorted.
        assert_eq!(streamed, batch.packets());
        assert_eq!(s.byte_offset(), b.buf.len() as u64);
    }

    #[test]
    fn trickle_reader_matches_whole_slice() {
        let t = sample_trace(20);
        let mut buf = Vec::new();
        write_pcap(&mut buf, &t).unwrap();
        let whole: Vec<PacketRecord> = CaptureStream::new(buf.as_slice())
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        let trickled: Vec<PacketRecord> = CaptureStream::new(Trickle(&buf))
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(whole, trickled);
    }

    #[test]
    fn batches_are_bounded_and_complete() {
        let t = sample_trace(25);
        let mut buf = Vec::new();
        write_pcap(&mut buf, &t).unwrap();
        let mut s = CaptureStream::new(buf.as_slice()).unwrap();
        let mut all = Vec::new();
        let mut batches = Vec::new();
        loop {
            let before = all.len();
            let got = s.next_batch(7, &mut all).unwrap();
            assert_eq!(all.len() - before, got);
            if got == 0 {
                break;
            }
            batches.push(got);
        }
        assert_eq!(all.len(), 25);
        assert_eq!(batches, vec![7, 7, 7, 4]);
    }

    #[test]
    fn chunks_project_the_same_packets_as_batches() {
        let t = sample_trace(25);
        let mut buf = Vec::new();
        write_pcap(&mut buf, &t).unwrap();
        let mut s = CaptureStream::new(buf.as_slice()).unwrap();
        let mut chunk = crate::batch::PacketBatch::new();
        let mut sizes = Vec::new();
        loop {
            let before = chunk.len();
            let got = s.next_chunk(7, &mut chunk).unwrap();
            assert_eq!(chunk.len() - before, got);
            if got == 0 {
                break;
            }
            sizes.push(got);
        }
        assert_eq!(sizes, vec![7, 7, 7, 4]);
        let pulled: Vec<PacketRecord> = CaptureStream::new(buf.as_slice())
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(chunk, crate::batch::PacketBatch::from_records(&pulled));
    }

    #[test]
    fn chunk_keeps_packets_decoded_before_a_fault() {
        let t = sample_trace(3);
        let mut buf = Vec::new();
        write_pcap(&mut buf, &t).unwrap();
        buf.truncate(buf.len() - 5);
        let mut s = CaptureStream::new(buf.as_slice()).unwrap();
        let mut chunk = crate::batch::PacketBatch::new();
        match s.next_chunk(10, &mut chunk) {
            Err(TraceError::TruncatedRecord { packets_read }) => assert_eq!(packets_read, 2),
            other => panic!("expected truncation, got {other:?}"),
        }
        assert_eq!(chunk.len(), 2);
    }

    #[test]
    fn truncated_pcap_reports_offset_of_broken_record() {
        let t = sample_trace(3);
        let mut buf = Vec::new();
        write_pcap(&mut buf, &t).unwrap();
        // Cut into the third record's data.
        let third_start = 24 + 2 * (16 + 28);
        buf.truncate(third_start + 16 + 5);
        let mut s = CaptureStream::new(buf.as_slice()).unwrap();
        assert!(s.next_packet().unwrap().is_some());
        assert!(s.next_packet().unwrap().is_some());
        match s.next_packet() {
            Err(TraceError::TruncatedRecord { packets_read }) => assert_eq!(packets_read, 2),
            other => panic!("expected truncation, got {other:?}"),
        }
        assert_eq!(s.fault_offset(), Some(third_start as u64));
        // Fused after the fault.
        assert!(s.next_packet().unwrap().is_none());
    }

    #[test]
    fn header_stage_errors_match_batch_reader() {
        // Short streams: truncated, never Io (batch contract).
        for len in [0usize, 1, 3] {
            let bytes = vec![0xa1u8; len];
            assert!(
                matches!(
                    CaptureStream::new(bytes.as_slice()),
                    Err(TraceError::TruncatedRecord { packets_read: 0 })
                ),
                "len {len}"
            );
        }
        // Valid magic, truncated global header.
        let mut short = pcap::MAGIC_US.to_le_bytes().to_vec();
        short.extend_from_slice(&[0u8; 7]);
        assert!(matches!(
            CaptureStream::new(short.as_slice()),
            Err(TraceError::TruncatedRecord { packets_read: 0 })
        ));
        // Garbage magic.
        assert!(matches!(
            CaptureStream::new(&[0u8; 32][..]),
            Err(TraceError::BadMagic(_))
        ));
        // Oversized caplen.
        let mut buf = Vec::new();
        write_pcap(&mut buf, &Trace::empty()).unwrap();
        buf.extend_from_slice(&[0u8; 8]);
        buf.extend_from_slice(&(pcap::MAX_CAPLEN + 1).to_le_bytes());
        buf.extend_from_slice(&40u32.to_le_bytes());
        let mut s = CaptureStream::new(buf.as_slice()).unwrap();
        assert!(matches!(
            s.next_packet(),
            Err(TraceError::OversizedRecord { .. })
        ));
        assert_eq!(s.fault_offset(), Some(24));
    }

    #[test]
    fn pcapng_truncation_mid_block_reports_block_start() {
        let mut b = NgBuilder::new();
        b.idb();
        b.epb(1, 40);
        b.epb(2, 41);
        let epb_len = 12 + 20; // header+trailer + fixed EPB body
        let second_epb_start = b.buf.len() - epb_len;
        let mut buf = b.buf;
        buf.truncate(buf.len() - 3);
        let mut s = CaptureStream::new(buf.as_slice()).unwrap();
        assert!(s.next_packet().unwrap().is_some());
        match s.next_packet() {
            Err(TraceError::TruncatedRecord { packets_read }) => assert_eq!(packets_read, 1),
            other => panic!("expected truncation, got {other:?}"),
        }
        assert_eq!(s.fault_offset(), Some(second_epb_start as u64));
    }

    #[test]
    fn second_section_resets_interfaces() {
        // Section 1: ms-resolution interface. Section 2: fresh default
        // µs interface — a stale interface list would mis-scale ts.
        let mut b = NgBuilder::new();
        {
            let mut body = Vec::new();
            body.extend_from_slice(&101u16.to_le_bytes());
            body.extend_from_slice(&0u16.to_le_bytes());
            body.extend_from_slice(&0u32.to_le_bytes());
            body.extend_from_slice(&9u16.to_le_bytes()); // if_tsresol
            body.extend_from_slice(&1u16.to_le_bytes());
            body.push(3); // 10^-3: milliseconds
            body.extend_from_slice(&[0, 0, 0]);
            body.extend_from_slice(&0u32.to_le_bytes()); // endofopt
            b.block(pcapng::IDB_TYPE, &body);
        }
        b.epb(2_000, 40); // 2000 ms = 2 s
        let second = NgBuilder::new();
        b.buf.extend_from_slice(&second.buf);
        b.idb();
        b.epb(5_000_000, 41); // back to µs: 5 s

        let packets: Vec<PacketRecord> = CaptureStream::new(b.buf.as_slice())
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        let ts: Vec<u64> = packets.iter().map(|p| p.timestamp.as_u64()).collect();
        assert_eq!(ts, vec![2_000_000, 5_000_000]);
        let batch = crate::read_capture(b.buf.as_slice()).unwrap();
        assert_eq!(packets, batch.packets());
    }
}
