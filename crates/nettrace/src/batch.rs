//! Structure-of-arrays packet batches for the columnar hot path.
//!
//! The per-packet pull model ([`PacketRecord`] at a time) is the right
//! interface for correctness-critical consumers — flow accounting needs
//! the full 5-tuple, the windower needs every header field — but the
//! ingest→sample→score loop touches only a *projection* of the record:
//! the arrival timestamp drives every sampler, and size/flow-id/flags
//! drive the paper's volume and flow statistics. [`PacketBatch`] holds
//! exactly that projection as four flat columns, so the samplers'
//! batch paths ([`Sampler::offer_ts_batch`](../../sampling) and the
//! strided overrides) can stream over a dense `&[u64]` instead of
//! striding through 32-byte records, and binning can run column-wise.
//!
//! A batch is a **lossy projection**: protocol, ports and network
//! numbers are deliberately not carried (consumers that need them keep
//! pulling whole records). Within the carried columns the mapping is
//! exact and positional — element `i` of every column describes the
//! same packet — so a chunked columnar decode is equivalent to a
//! per-packet decode, a property the proptest suite pins for both
//! capture formats.

use crate::packet::PacketRecord;

/// A structure-of-arrays view of a run of packets: four parallel
/// columns, one element per packet, in arrival (file) order.
///
/// Columns are deliberately wider than the packed [`PacketRecord`]
/// fields (`size: u32` vs `u16`, `flow_id: u64` vs `u32`) so column
/// arithmetic — byte-volume sums, flow-id keys — never widens in the
/// inner loop.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PacketBatch {
    /// Arrival timestamps, microseconds since trace start.
    pub ts: Vec<u64>,
    /// IP packet lengths in bytes.
    pub size: Vec<u32>,
    /// Synthetic flow identifiers (0 = unassigned).
    pub flow_id: Vec<u64>,
    /// Header flag bits (see [`PacketRecord::FLAG_SYN`]).
    pub flags: Vec<u8>,
}

impl PacketBatch {
    /// An empty batch.
    #[must_use]
    pub fn new() -> Self {
        PacketBatch::default()
    }

    /// An empty batch with room for `cap` packets in every column.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        PacketBatch {
            ts: Vec::with_capacity(cap),
            size: Vec::with_capacity(cap),
            flow_id: Vec::with_capacity(cap),
            flags: Vec::with_capacity(cap),
        }
    }

    /// Packets in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// Whether the batch holds no packets.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// Append one packet's projection to every column.
    pub fn push(&mut self, pkt: &PacketRecord) {
        self.ts.push(pkt.timestamp.as_u64());
        self.size.push(u32::from(pkt.size));
        self.flow_id.push(u64::from(pkt.flow_id));
        self.flags.push(pkt.flags);
    }

    /// Drop all packets, keeping the column allocations.
    pub fn clear(&mut self) {
        self.ts.clear();
        self.size.clear();
        self.flow_id.clear();
        self.flags.clear();
    }

    /// Project a slice of records into a fresh batch.
    #[must_use]
    pub fn from_records(records: &[PacketRecord]) -> Self {
        let mut batch = PacketBatch::with_capacity(records.len());
        for p in records {
            batch.push(p);
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Micros;

    #[test]
    fn columns_stay_parallel() {
        let records: Vec<PacketRecord> = (0..10u64)
            .map(|i| {
                PacketRecord::new(Micros(i * 400), 40 + i as u16)
                    .with_flow(i as u32 + 1, i % 2 == 0)
            })
            .collect();
        let batch = PacketBatch::from_records(&records);
        assert_eq!(batch.len(), 10);
        assert!(!batch.is_empty());
        for (i, p) in records.iter().enumerate() {
            assert_eq!(batch.ts[i], p.timestamp.as_u64());
            assert_eq!(batch.size[i], u32::from(p.size));
            assert_eq!(batch.flow_id[i], u64::from(p.flow_id));
            assert_eq!(batch.flags[i], p.flags);
        }
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut batch = PacketBatch::with_capacity(64);
        for i in 0..64u64 {
            batch.push(&PacketRecord::new(Micros(i), 40));
        }
        let cap = batch.ts.capacity();
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.len(), 0);
        assert!(batch.ts.capacity() >= cap);
    }

    #[test]
    fn empty_batch_is_empty() {
        let batch = PacketBatch::new();
        assert!(batch.is_empty());
        assert_eq!(batch, PacketBatch::from_records(&[]));
    }
}
