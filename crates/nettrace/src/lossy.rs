//! Lossy capture ingestion: salvage the longest valid prefix.
//!
//! The strict readers ([`crate::pcap::read_pcap`],
//! [`crate::pcapng::read_pcapng`]) reject a capture at the first
//! malformed byte — the right default for experiments, where a silent
//! partial read would bias every downstream statistic. But real capture
//! files are routinely truncated (full disk, killed tcpdump) and a
//! 649 MB trace with one bad record tail is still 649 MB of usable
//! population. [`read_capture_lossy`] parses as far as the bytes allow
//! and reports exactly what it could and could not use: packets
//! salvaged, bytes consumed, and the first error with its byte offset.
//!
//! The lossy path parses from an in-memory slice (offsets are exact and
//! a corrupt length field can never drive an unbounded allocation — the
//! declared length is bounds-checked against the bytes actually
//! present), and reuses the strict readers' record/block decoders so
//! the two paths cannot drift: on a fully valid stream the salvaged
//! trace is identical to the strict read.

use crate::error::TraceError;
use crate::packet::PacketRecord;
use crate::pcap;
use crate::pcapng;
use crate::time::Micros;
use crate::trace::Trace;
use std::io::Read;

/// Outcome of a lossy capture read: the salvaged prefix plus a precise
/// account of where (and why) parsing stopped.
#[derive(Debug)]
pub struct IngestReport {
    /// Packets recovered from the valid prefix, sorted by timestamp.
    pub trace: Trace,
    /// Capture format the stream sniffed as: `"pcap"`, `"pcapng"`, or
    /// `"unknown"` when even the magic could not be classified.
    pub format: &'static str,
    /// Bytes of the stream that parsed into complete structures. On a
    /// fully valid stream this equals `bytes_total`.
    pub bytes_consumed: u64,
    /// Total bytes in the stream.
    pub bytes_total: u64,
    /// Number of packets salvaged (equals `trace.len()`).
    pub packets_salvaged: usize,
    /// First parse failure, if any: the byte offset of the structure
    /// that could not be decoded, and the typed error.
    pub error: Option<IngestFault>,
}

impl IngestReport {
    /// Whether the whole stream parsed cleanly (the strict readers
    /// would have accepted it).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.error.is_none()
    }
}

/// A parse failure localized to a byte offset.
#[derive(Debug)]
pub struct IngestFault {
    /// Offset of the record or block that failed to decode.
    pub offset: u64,
    /// Why it failed. Never [`TraceError::Io`]: the lossy reader works
    /// from an in-memory buffer.
    pub error: TraceError,
}

/// Read a capture stream leniently, salvaging every packet in the
/// longest valid prefix. Sniffs classic pcap vs pcapng exactly like
/// [`crate::read_capture`].
///
/// # Errors
/// Only [`TraceError::Io`], from buffering the stream. Malformed bytes
/// are never an `Err`: they end up in [`IngestReport::error`].
pub fn read_capture_lossy<R: Read>(mut r: R) -> Result<IngestReport, TraceError> {
    let _span = obskit::span("nettrace_lossy_read");
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    let report = salvage(&bytes);
    let labels = [("format", report.format)];
    obskit::counter_labeled("nettrace_lossy_packets_salvaged_total", &labels)
        .add(report.packets_salvaged as u64);
    if report.error.is_some() {
        obskit::counter_labeled("nettrace_lossy_faults_total", &labels).inc();
    }
    Ok(report)
}

/// Salvage from an in-memory capture image.
#[must_use]
pub fn salvage(bytes: &[u8]) -> IngestReport {
    if bytes.len() < 4 {
        return IngestReport {
            trace: Trace::empty(),
            format: "unknown",
            bytes_consumed: 0,
            bytes_total: bytes.len() as u64,
            packets_salvaged: 0,
            error: Some(IngestFault {
                offset: 0,
                error: TraceError::TruncatedRecord { packets_read: 0 },
            }),
        };
    }
    let magic = [bytes[0], bytes[1], bytes[2], bytes[3]];
    if u32::from_le_bytes(magic) == pcapng::SHB_TYPE {
        salvage_pcapng(bytes)
    } else if pcap::sniff_magic(magic).is_some() {
        salvage_pcap(bytes)
    } else {
        IngestReport {
            trace: Trace::empty(),
            format: "unknown",
            bytes_consumed: 0,
            bytes_total: bytes.len() as u64,
            packets_salvaged: 0,
            error: Some(IngestFault {
                offset: 0,
                error: TraceError::BadMagic(u32::from_le_bytes(magic)),
            }),
        }
    }
}

fn report(
    format: &'static str,
    packets: Vec<PacketRecord>,
    consumed: u64,
    total: u64,
    error: Option<IngestFault>,
) -> IngestReport {
    let trace = Trace::from_unordered(packets);
    IngestReport {
        packets_salvaged: trace.len(),
        trace,
        format,
        bytes_consumed: consumed,
        bytes_total: total,
        error,
    }
}

fn salvage_pcap(bytes: &[u8]) -> IngestReport {
    let magic = [bytes[0], bytes[1], bytes[2], bytes[3]];
    let (endian, nanos) = pcap::sniff_magic(magic).expect("caller sniffed the magic");
    let total = bytes.len() as u64;
    if bytes.len() < 24 {
        return report(
            "pcap",
            Vec::new(),
            0,
            total,
            Some(IngestFault {
                offset: 0,
                error: TraceError::TruncatedRecord { packets_read: 0 },
            }),
        );
    }
    let mut packets = Vec::new();
    let mut o = 24usize;
    let fault = loop {
        if o == bytes.len() {
            break None;
        }
        if o + 16 > bytes.len() {
            break Some(IngestFault {
                offset: o as u64,
                error: TraceError::TruncatedRecord {
                    packets_read: packets.len(),
                },
            });
        }
        let f =
            |a: usize| pcap::u32_from(endian, [bytes[a], bytes[a + 1], bytes[a + 2], bytes[a + 3]]);
        let (sec, frac, caplen, orig_len) = (f(o), f(o + 4), f(o + 8), f(o + 12));
        if caplen > pcap::MAX_CAPLEN {
            break Some(IngestFault {
                offset: o as u64,
                error: TraceError::OversizedRecord { caplen },
            });
        }
        let end = o + 16 + caplen as usize;
        if end > bytes.len() {
            break Some(IngestFault {
                offset: o as u64,
                error: TraceError::TruncatedRecord {
                    packets_read: packets.len(),
                },
            });
        }
        let usec = if nanos {
            u64::from(frac) / 1000
        } else {
            u64::from(frac)
        };
        let ts = Micros(u64::from(sec) * 1_000_000 + usec);
        packets.push(pcap::parse_ipv4(&bytes[o + 16..end], orig_len, ts));
        o = end;
    };
    let consumed = o as u64;
    report("pcap", packets, consumed, total, fault)
}

fn salvage_pcapng(bytes: &[u8]) -> IngestReport {
    let total = bytes.len() as u64;
    let mut packets: Vec<PacketRecord> = Vec::new();
    let mut interfaces: Vec<pcapng::Interface> = Vec::new();
    let mut endian = pcapng::Endian::Little;
    let mut first = true;
    let mut o = 0usize;
    let fault = loop {
        if o == bytes.len() {
            if first {
                break Some(IngestFault {
                    offset: 0,
                    error: TraceError::TruncatedRecord { packets_read: 0 },
                });
            }
            break None;
        }
        let truncated = |at: usize, got: usize| IngestFault {
            offset: at as u64,
            error: TraceError::TruncatedRecord { packets_read: got },
        };
        if o + 8 > bytes.len() {
            break Some(truncated(o, packets.len()));
        }
        let raw_type_le = u32::from_le_bytes([bytes[o], bytes[o + 1], bytes[o + 2], bytes[o + 3]]);
        if first && raw_type_le != pcapng::SHB_TYPE {
            break Some(IngestFault {
                offset: o as u64,
                error: TraceError::BadMagic(raw_type_le),
            });
        }
        if raw_type_le == pcapng::SHB_TYPE {
            if o + 12 > bytes.len() {
                break Some(truncated(o, packets.len()));
            }
            let bom = [bytes[o + 8], bytes[o + 9], bytes[o + 10], bytes[o + 11]];
            endian = if u32::from_le_bytes(bom) == pcapng::BOM {
                pcapng::Endian::Little
            } else if u32::from_be_bytes(bom) == pcapng::BOM {
                pcapng::Endian::Big
            } else {
                break Some(IngestFault {
                    offset: o as u64,
                    error: TraceError::BadMagic(u32::from_le_bytes(bom)),
                });
            };
            let total_len = pcapng::u32_at(endian, &bytes[o + 4..o + 8]);
            if !(28..=pcapng::MAX_BLOCK).contains(&total_len) || !total_len.is_multiple_of(4) {
                break Some(IngestFault {
                    offset: o as u64,
                    error: TraceError::OversizedRecord { caplen: total_len },
                });
            }
            if o + total_len as usize > bytes.len() {
                break Some(truncated(o, packets.len()));
            }
            interfaces.clear();
            first = false;
            o += total_len as usize;
            continue;
        }
        let block_type = pcapng::u32_at(endian, &bytes[o..o + 4]);
        let total_len = pcapng::u32_at(endian, &bytes[o + 4..o + 8]);
        if !(12..=pcapng::MAX_BLOCK).contains(&total_len) || !total_len.is_multiple_of(4) {
            break Some(IngestFault {
                offset: o as u64,
                error: TraceError::OversizedRecord { caplen: total_len },
            });
        }
        let end = o + total_len as usize;
        if end > bytes.len() {
            break Some(truncated(o, packets.len()));
        }
        let body = &bytes[o + 8..end - 4];
        match block_type {
            pcapng::IDB_TYPE => {
                if let Some(iface) = pcapng::parse_idb(endian, body) {
                    interfaces.push(iface);
                }
            }
            pcapng::EPB_TYPE => {
                if let Some(p) = pcapng::parse_epb(endian, body, &interfaces) {
                    packets.push(p);
                }
            }
            pcapng::SPB_TYPE => {
                let ts = packets.last().map_or(Micros::ZERO, |p| p.timestamp);
                if let Some(p) = pcapng::parse_spb(endian, body, ts) {
                    packets.push(p);
                }
            }
            _ => {}
        }
        o = end;
    };
    let consumed = o as u64;
    report("pcapng", packets, consumed, total, fault)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Protocol;
    use crate::pcap::write_pcap;
    use crate::read_capture;

    fn sample_trace() -> Trace {
        Trace::new(vec![
            PacketRecord::new(Micros(0), 40)
                .with_protocol(Protocol::Tcp)
                .with_ports(1023, 23),
            PacketRecord::new(Micros(2358), 552).with_protocol(Protocol::Udp),
            PacketRecord::new(Micros(1_000_000), 1500).with_protocol(Protocol::Icmp),
        ])
        .unwrap()
    }

    fn pcap_bytes() -> Vec<u8> {
        let mut buf = Vec::new();
        write_pcap(&mut buf, &sample_trace()).unwrap();
        buf
    }

    #[test]
    fn clean_stream_matches_strict_reader() {
        let buf = pcap_bytes();
        let strict = read_capture(buf.as_slice()).unwrap();
        let r = read_capture_lossy(buf.as_slice()).unwrap();
        assert!(r.is_clean());
        assert_eq!(r.format, "pcap");
        assert_eq!(r.bytes_consumed, buf.len() as u64);
        assert_eq!(r.bytes_total, buf.len() as u64);
        assert_eq!(r.packets_salvaged, strict.len());
        assert_eq!(r.trace.packets(), strict.packets());
    }

    #[test]
    fn salvages_valid_prefix_at_every_truncation_point() {
        let buf = pcap_bytes();
        // Record boundaries: 24-byte header, then 16 + 28 bytes each.
        let rec = 16 + 28;
        for cut in 0..buf.len() {
            let r = salvage(&buf[..cut]);
            let full_records = cut.saturating_sub(24) / rec;
            assert_eq!(r.packets_salvaged, full_records, "cut {cut}");
            assert_eq!(r.bytes_total, cut as u64, "cut {cut}");
            if cut >= 24 {
                assert_eq!(
                    r.bytes_consumed,
                    (24 + full_records * rec) as u64,
                    "cut {cut}"
                );
            }
            // A cut stream is clean only when it ends exactly on a
            // record boundary (including the bare 24-byte header).
            let on_boundary = cut >= 24 && (cut - 24) % rec == 0;
            assert_eq!(r.is_clean(), on_boundary, "cut {cut}");
            if let Some(fault) = &r.error {
                assert!(fault.offset <= cut as u64, "cut {cut}");
            }
        }
    }

    /// Hand-build a little-endian pcapng stream: SHB, IDB, two EPBs
    /// with 28-byte payloads. Returns the bytes and each block's start
    /// offset.
    fn pcapng_bytes() -> (Vec<u8>, Vec<usize>) {
        let mut buf = Vec::new();
        let mut starts = Vec::new();
        let block = |buf: &mut Vec<u8>, btype: u32, body: &[u8]| {
            let total = 12 + body.len() as u32;
            buf.extend_from_slice(&btype.to_le_bytes());
            buf.extend_from_slice(&total.to_le_bytes());
            buf.extend_from_slice(body);
            buf.extend_from_slice(&total.to_le_bytes());
        };
        starts.push(buf.len());
        let mut shb = Vec::new();
        shb.extend_from_slice(&pcapng::BOM.to_le_bytes());
        shb.extend_from_slice(&1u16.to_le_bytes());
        shb.extend_from_slice(&0u16.to_le_bytes());
        shb.extend_from_slice(&(-1i64).to_le_bytes());
        block(&mut buf, pcapng::SHB_TYPE, &shb);
        starts.push(buf.len());
        let mut idb = Vec::new();
        idb.extend_from_slice(&101u16.to_le_bytes());
        idb.extend_from_slice(&0u16.to_le_bytes());
        idb.extend_from_slice(&0u32.to_le_bytes());
        block(&mut buf, pcapng::IDB_TYPE, &idb);
        for ticks in [1_000u64, 2_000] {
            starts.push(buf.len());
            let mut epb = Vec::new();
            epb.extend_from_slice(&0u32.to_le_bytes());
            epb.extend_from_slice(&((ticks >> 32) as u32).to_le_bytes());
            epb.extend_from_slice(&((ticks & 0xffff_ffff) as u32).to_le_bytes());
            epb.extend_from_slice(&28u32.to_le_bytes());
            epb.extend_from_slice(&40u32.to_le_bytes());
            epb.extend_from_slice(&[0u8; 28]);
            block(&mut buf, pcapng::EPB_TYPE, &epb);
        }
        starts.push(buf.len());
        (buf, starts)
    }

    #[test]
    fn pcapng_truncation_sweep_salvages_complete_blocks() {
        let (buf, starts) = pcapng_bytes();
        let strict = read_capture(buf.as_slice()).unwrap();
        assert_eq!(strict.len(), 2);
        for cut in 0..=buf.len() {
            let r = salvage(&buf[..cut]);
            // Packets salvaged = EPBs wholly inside the prefix: EPB 1
            // spans starts[2]..starts[3], EPB 2 spans starts[3]..starts[4].
            let expect = [starts[3], starts[4]].iter().filter(|&&e| cut >= e).count();
            assert_eq!(r.packets_salvaged, expect, "cut {cut}");
            let consumed = starts.iter().rev().find(|&&s| s <= cut).copied().unwrap();
            assert_eq!(r.bytes_consumed, consumed as u64, "cut {cut}");
            assert_eq!(
                r.is_clean(),
                cut == consumed && cut >= starts[1],
                "cut {cut}"
            );
        }
        // The full stream matches the strict reader exactly.
        let r = salvage(&buf);
        assert_eq!(r.trace.packets(), strict.packets());
    }

    #[test]
    fn corrupt_length_field_cannot_drive_allocation() {
        let mut buf = pcap_bytes();
        // Corrupt the second record's caplen to u32::MAX.
        let off = 24 + (16 + 28) + 8;
        buf[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let r = salvage(&buf);
        assert_eq!(r.packets_salvaged, 1);
        let fault = r.error.expect("fault");
        assert_eq!(fault.offset, 24 + (16 + 28) as u64);
        assert!(matches!(
            fault.error,
            TraceError::OversizedRecord { caplen: u32::MAX }
        ));
    }

    #[test]
    fn garbage_reports_bad_magic_at_offset_zero() {
        let r = salvage(&[0xffu8; 64]);
        assert_eq!(r.packets_salvaged, 0);
        assert_eq!(r.format, "unknown");
        let fault = r.error.expect("fault");
        assert_eq!(fault.offset, 0);
        assert!(matches!(fault.error, TraceError::BadMagic(_)));
    }

    #[test]
    fn short_inputs_salvage_nothing_without_panicking() {
        for len in [0usize, 1, 3] {
            let r = salvage(&vec![0xa1u8; len]);
            assert_eq!(r.packets_salvaged, 0);
            assert!(!r.is_clean());
        }
    }
}
