//! Lossy capture ingestion: salvage the longest valid prefix.
//!
//! The strict readers ([`crate::pcap::read_pcap`],
//! [`crate::pcapng::read_pcapng`]) reject a capture at the first
//! malformed byte — the right default for experiments, where a silent
//! partial read would bias every downstream statistic. But real capture
//! files are routinely truncated (full disk, killed tcpdump) and a
//! 649 MB trace with one bad record tail is still 649 MB of usable
//! population. [`read_capture_lossy`] parses as far as the bytes allow
//! and reports exactly what it could and could not use: packets
//! salvaged, bytes consumed, and every fault with its byte offset.
//!
//! pcapng goes further than prefix salvage: the format is a sequence of
//! self-delimiting sections, each introduced by a Section Header Block,
//! so a corrupt block in section 1 need not cost the sections after it.
//! On an undecodable block the salvager records the fault, scans
//! forward for the next plausible SHB (magic, valid byte-order mark,
//! sane and fully contained block length), and resumes there — one
//! fault entry per damaged region. Classic pcap has no such resync
//! marker (records are not self-delimiting once a length field is
//! corrupt), so pcap salvage remains longest-valid-prefix with at most
//! one fault.
//!
//! The lossy path parses from an in-memory slice (offsets are exact and
//! a corrupt length field can never drive an unbounded allocation — the
//! declared length is bounds-checked against the bytes actually
//! present), and reuses the strict readers' record/block decoders so
//! the two paths cannot drift: on a fully valid stream the salvaged
//! trace is identical to the strict read.

use crate::error::TraceError;
use crate::packet::PacketRecord;
use crate::pcap;
use crate::pcapng;
use crate::time::Micros;
use crate::trace::Trace;
use std::io::Read;

/// Outcome of a lossy capture read: the salvaged prefix plus a precise
/// account of where (and why) parsing stopped.
#[derive(Debug)]
pub struct IngestReport {
    /// Packets recovered from the valid prefix, sorted by timestamp.
    pub trace: Trace,
    /// Capture format the stream sniffed as: `"pcap"`, `"pcapng"`, or
    /// `"unknown"` when even the magic could not be classified.
    pub format: &'static str,
    /// Bytes of the stream that parsed into complete structures. On a
    /// fully valid stream this equals `bytes_total`; garbage skipped
    /// while resynchronizing to a later pcapng section is excluded.
    pub bytes_consumed: u64,
    /// Total bytes in the stream.
    pub bytes_total: u64,
    /// Number of packets salvaged (equals `trace.len()`).
    pub packets_salvaged: usize,
    /// Every parse failure, in stream order: the byte offset of the
    /// structure that could not be decoded, and the typed error. For
    /// pcap at most one entry (no resync marker); for pcapng one entry
    /// per damaged region the salvager skipped.
    pub faults: Vec<IngestFault>,
}

impl IngestReport {
    /// Whether the whole stream parsed cleanly (the strict readers
    /// would have accepted it).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.faults.is_empty()
    }

    /// The earliest fault, if any.
    #[must_use]
    pub fn first_fault(&self) -> Option<&IngestFault> {
        self.faults.first()
    }
}

/// A parse failure localized to a byte offset.
#[derive(Debug)]
pub struct IngestFault {
    /// Offset of the record or block that failed to decode.
    pub offset: u64,
    /// Why it failed. Never [`TraceError::Io`]: the lossy reader works
    /// from an in-memory buffer.
    pub error: TraceError,
}

/// Read a capture stream leniently, salvaging every packet in the
/// longest valid prefix. Sniffs classic pcap vs pcapng exactly like
/// [`crate::read_capture`].
///
/// # Errors
/// Only [`TraceError::Io`], from buffering the stream. Malformed bytes
/// are never an `Err`: they end up in [`IngestReport::faults`].
pub fn read_capture_lossy<R: Read>(mut r: R) -> Result<IngestReport, TraceError> {
    let _span = obskit::span("nettrace_lossy_read");
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    let report = salvage(&bytes);
    let labels = [("format", report.format)];
    obskit::counter_labeled("nettrace_lossy_packets_salvaged_total", &labels)
        .add(report.packets_salvaged as u64);
    if !report.is_clean() {
        obskit::counter_labeled("nettrace_lossy_faults_total", &labels)
            .add(report.faults.len() as u64);
    }
    Ok(report)
}

/// Salvage from an in-memory capture image.
#[must_use]
pub fn salvage(bytes: &[u8]) -> IngestReport {
    if bytes.len() < 4 {
        return IngestReport {
            trace: Trace::empty(),
            format: "unknown",
            bytes_consumed: 0,
            bytes_total: bytes.len() as u64,
            packets_salvaged: 0,
            faults: vec![IngestFault {
                offset: 0,
                error: TraceError::TruncatedRecord { packets_read: 0 },
            }],
        };
    }
    let magic = [bytes[0], bytes[1], bytes[2], bytes[3]];
    if u32::from_le_bytes(magic) == pcapng::SHB_TYPE {
        salvage_pcapng(bytes)
    } else if pcap::sniff_magic(magic).is_some() {
        salvage_pcap(bytes)
    } else {
        IngestReport {
            trace: Trace::empty(),
            format: "unknown",
            bytes_consumed: 0,
            bytes_total: bytes.len() as u64,
            packets_salvaged: 0,
            faults: vec![IngestFault {
                offset: 0,
                error: TraceError::BadMagic(u32::from_le_bytes(magic)),
            }],
        }
    }
}

fn report(
    format: &'static str,
    packets: Vec<PacketRecord>,
    consumed: u64,
    total: u64,
    faults: Vec<IngestFault>,
) -> IngestReport {
    let trace = Trace::from_unordered(packets);
    IngestReport {
        packets_salvaged: trace.len(),
        trace,
        format,
        bytes_consumed: consumed,
        bytes_total: total,
        faults,
    }
}

fn salvage_pcap(bytes: &[u8]) -> IngestReport {
    let magic = [bytes[0], bytes[1], bytes[2], bytes[3]];
    let (endian, nanos) = pcap::sniff_magic(magic).expect("caller sniffed the magic");
    let total = bytes.len() as u64;
    if bytes.len() < 24 {
        return report(
            "pcap",
            Vec::new(),
            0,
            total,
            vec![IngestFault {
                offset: 0,
                error: TraceError::TruncatedRecord { packets_read: 0 },
            }],
        );
    }
    let mut packets = Vec::new();
    let mut o = 24usize;
    let fault = loop {
        if o == bytes.len() {
            break None;
        }
        if o + 16 > bytes.len() {
            break Some(IngestFault {
                offset: o as u64,
                error: TraceError::TruncatedRecord {
                    packets_read: packets.len(),
                },
            });
        }
        let f =
            |a: usize| pcap::u32_from(endian, [bytes[a], bytes[a + 1], bytes[a + 2], bytes[a + 3]]);
        let (sec, frac, caplen, orig_len) = (f(o), f(o + 4), f(o + 8), f(o + 12));
        if caplen > pcap::MAX_CAPLEN {
            break Some(IngestFault {
                offset: o as u64,
                error: TraceError::OversizedRecord { caplen },
            });
        }
        let end = o + 16 + caplen as usize;
        if end > bytes.len() {
            break Some(IngestFault {
                offset: o as u64,
                error: TraceError::TruncatedRecord {
                    packets_read: packets.len(),
                },
            });
        }
        let usec = if nanos {
            u64::from(frac) / 1000
        } else {
            u64::from(frac)
        };
        let ts = Micros(u64::from(sec) * 1_000_000 + usec);
        packets.push(pcap::parse_ipv4(&bytes[o + 16..end], orig_len, ts));
        o = end;
    };
    let consumed = o as u64;
    report(
        "pcap",
        packets,
        consumed,
        total,
        fault.into_iter().collect(),
    )
}

/// Scan forward from `from` for the next plausible Section Header
/// Block: the SHB magic (an endianness-neutral palindrome), a valid
/// byte-order mark, and a sane block length wholly contained in the
/// buffer. Plausibility matters — a bare magic inside garbage must not
/// trigger a resync that immediately faults again.
fn find_next_shb(bytes: &[u8], from: usize) -> Option<usize> {
    let magic = pcapng::SHB_TYPE.to_le_bytes();
    let mut at = from;
    while at + 28 <= bytes.len() {
        if bytes[at..at + 4] == magic {
            let bom = [bytes[at + 8], bytes[at + 9], bytes[at + 10], bytes[at + 11]];
            let endian = if u32::from_le_bytes(bom) == pcapng::BOM {
                Some(pcapng::Endian::Little)
            } else if u32::from_be_bytes(bom) == pcapng::BOM {
                Some(pcapng::Endian::Big)
            } else {
                None
            };
            if let Some(endian) = endian {
                let total_len = pcapng::u32_at(endian, &bytes[at + 4..at + 8]);
                if (28..=pcapng::MAX_BLOCK).contains(&total_len)
                    && total_len.is_multiple_of(4)
                    && at + total_len as usize <= bytes.len()
                {
                    return Some(at);
                }
            }
        }
        at += 1;
    }
    None
}

fn salvage_pcapng(bytes: &[u8]) -> IngestReport {
    let total = bytes.len() as u64;
    let mut packets: Vec<PacketRecord> = Vec::new();
    let mut interfaces: Vec<pcapng::Interface> = Vec::new();
    let mut faults: Vec<IngestFault> = Vec::new();
    let mut endian = pcapng::Endian::Little;
    let mut first = true;
    let mut consumed = 0u64;
    let mut o = 0usize;
    loop {
        if o == bytes.len() {
            if first {
                faults.push(IngestFault {
                    offset: 0,
                    error: TraceError::TruncatedRecord { packets_read: 0 },
                });
            }
            break;
        }
        let truncated = |at: usize, got: usize| IngestFault {
            offset: at as u64,
            error: TraceError::TruncatedRecord { packets_read: got },
        };
        // On any undecodable block: record the fault, then resume at
        // the next plausible section header — later sections are still
        // good data. No plausible SHB forward of the fault ends the
        // salvage.
        let fault = 'block: {
            if o + 8 > bytes.len() {
                break 'block Some(truncated(o, packets.len()));
            }
            let raw_type_le =
                u32::from_le_bytes([bytes[o], bytes[o + 1], bytes[o + 2], bytes[o + 3]]);
            if first && raw_type_le != pcapng::SHB_TYPE {
                break 'block Some(IngestFault {
                    offset: o as u64,
                    error: TraceError::BadMagic(raw_type_le),
                });
            }
            if raw_type_le == pcapng::SHB_TYPE {
                if o + 12 > bytes.len() {
                    break 'block Some(truncated(o, packets.len()));
                }
                let bom = [bytes[o + 8], bytes[o + 9], bytes[o + 10], bytes[o + 11]];
                endian = if u32::from_le_bytes(bom) == pcapng::BOM {
                    pcapng::Endian::Little
                } else if u32::from_be_bytes(bom) == pcapng::BOM {
                    pcapng::Endian::Big
                } else {
                    break 'block Some(IngestFault {
                        offset: o as u64,
                        error: TraceError::BadMagic(u32::from_le_bytes(bom)),
                    });
                };
                let total_len = pcapng::u32_at(endian, &bytes[o + 4..o + 8]);
                if !(28..=pcapng::MAX_BLOCK).contains(&total_len) || !total_len.is_multiple_of(4) {
                    break 'block Some(IngestFault {
                        offset: o as u64,
                        error: TraceError::OversizedRecord { caplen: total_len },
                    });
                }
                if o + total_len as usize > bytes.len() {
                    break 'block Some(truncated(o, packets.len()));
                }
                interfaces.clear();
                first = false;
                consumed += u64::from(total_len);
                o += total_len as usize;
                break 'block None;
            }
            let block_type = pcapng::u32_at(endian, &bytes[o..o + 4]);
            let total_len = pcapng::u32_at(endian, &bytes[o + 4..o + 8]);
            if !(12..=pcapng::MAX_BLOCK).contains(&total_len) || !total_len.is_multiple_of(4) {
                break 'block Some(IngestFault {
                    offset: o as u64,
                    error: TraceError::OversizedRecord { caplen: total_len },
                });
            }
            let end = o + total_len as usize;
            if end > bytes.len() {
                break 'block Some(truncated(o, packets.len()));
            }
            let body = &bytes[o + 8..end - 4];
            match block_type {
                pcapng::IDB_TYPE => {
                    if let Some(iface) = pcapng::parse_idb(endian, body) {
                        interfaces.push(iface);
                    }
                }
                pcapng::EPB_TYPE => {
                    if let Some(p) = pcapng::parse_epb(endian, body, &interfaces) {
                        packets.push(p);
                    }
                }
                pcapng::SPB_TYPE => {
                    let ts = packets.last().map_or(Micros::ZERO, |p| p.timestamp);
                    if let Some(p) = pcapng::parse_spb(endian, body, ts) {
                        packets.push(p);
                    }
                }
                _ => {}
            }
            consumed += u64::from(total_len);
            o = end;
            None
        };
        if let Some(fault) = fault {
            let resume_from = fault.offset as usize + 1;
            faults.push(fault);
            match find_next_shb(bytes, resume_from) {
                // A new section resets interface state on its own (the
                // SHB branch clears `interfaces`), so just jump there.
                Some(next) => o = next,
                None => break,
            }
        }
    }
    report("pcapng", packets, consumed, total, faults)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Protocol;
    use crate::pcap::write_pcap;
    use crate::read_capture;

    fn sample_trace() -> Trace {
        Trace::new(vec![
            PacketRecord::new(Micros(0), 40)
                .with_protocol(Protocol::Tcp)
                .with_ports(1023, 23),
            PacketRecord::new(Micros(2358), 552).with_protocol(Protocol::Udp),
            PacketRecord::new(Micros(1_000_000), 1500).with_protocol(Protocol::Icmp),
        ])
        .unwrap()
    }

    fn pcap_bytes() -> Vec<u8> {
        let mut buf = Vec::new();
        write_pcap(&mut buf, &sample_trace()).unwrap();
        buf
    }

    #[test]
    fn clean_stream_matches_strict_reader() {
        let buf = pcap_bytes();
        let strict = read_capture(buf.as_slice()).unwrap();
        let r = read_capture_lossy(buf.as_slice()).unwrap();
        assert!(r.is_clean());
        assert_eq!(r.format, "pcap");
        assert_eq!(r.bytes_consumed, buf.len() as u64);
        assert_eq!(r.bytes_total, buf.len() as u64);
        assert_eq!(r.packets_salvaged, strict.len());
        assert_eq!(r.trace.packets(), strict.packets());
    }

    #[test]
    fn salvages_valid_prefix_at_every_truncation_point() {
        let buf = pcap_bytes();
        // Record boundaries: 24-byte header, then 16 + 28 bytes each.
        let rec = 16 + 28;
        for cut in 0..buf.len() {
            let r = salvage(&buf[..cut]);
            let full_records = cut.saturating_sub(24) / rec;
            assert_eq!(r.packets_salvaged, full_records, "cut {cut}");
            assert_eq!(r.bytes_total, cut as u64, "cut {cut}");
            if cut >= 24 {
                assert_eq!(
                    r.bytes_consumed,
                    (24 + full_records * rec) as u64,
                    "cut {cut}"
                );
            }
            // A cut stream is clean only when it ends exactly on a
            // record boundary (including the bare 24-byte header).
            let on_boundary = cut >= 24 && (cut - 24) % rec == 0;
            assert_eq!(r.is_clean(), on_boundary, "cut {cut}");
            if let Some(fault) = r.first_fault() {
                assert!(fault.offset <= cut as u64, "cut {cut}");
            }
        }
    }

    /// Hand-build a little-endian pcapng stream: SHB, IDB, two EPBs
    /// with 28-byte payloads. Returns the bytes and each block's start
    /// offset.
    fn pcapng_bytes() -> (Vec<u8>, Vec<usize>) {
        let mut buf = Vec::new();
        let mut starts = Vec::new();
        let block = |buf: &mut Vec<u8>, btype: u32, body: &[u8]| {
            let total = 12 + body.len() as u32;
            buf.extend_from_slice(&btype.to_le_bytes());
            buf.extend_from_slice(&total.to_le_bytes());
            buf.extend_from_slice(body);
            buf.extend_from_slice(&total.to_le_bytes());
        };
        starts.push(buf.len());
        let mut shb = Vec::new();
        shb.extend_from_slice(&pcapng::BOM.to_le_bytes());
        shb.extend_from_slice(&1u16.to_le_bytes());
        shb.extend_from_slice(&0u16.to_le_bytes());
        shb.extend_from_slice(&(-1i64).to_le_bytes());
        block(&mut buf, pcapng::SHB_TYPE, &shb);
        starts.push(buf.len());
        let mut idb = Vec::new();
        idb.extend_from_slice(&101u16.to_le_bytes());
        idb.extend_from_slice(&0u16.to_le_bytes());
        idb.extend_from_slice(&0u32.to_le_bytes());
        block(&mut buf, pcapng::IDB_TYPE, &idb);
        for ticks in [1_000u64, 2_000] {
            starts.push(buf.len());
            let mut epb = Vec::new();
            epb.extend_from_slice(&0u32.to_le_bytes());
            epb.extend_from_slice(&((ticks >> 32) as u32).to_le_bytes());
            epb.extend_from_slice(&((ticks & 0xffff_ffff) as u32).to_le_bytes());
            epb.extend_from_slice(&28u32.to_le_bytes());
            epb.extend_from_slice(&40u32.to_le_bytes());
            epb.extend_from_slice(&[0u8; 28]);
            block(&mut buf, pcapng::EPB_TYPE, &epb);
        }
        starts.push(buf.len());
        (buf, starts)
    }

    #[test]
    fn pcapng_truncation_sweep_salvages_complete_blocks() {
        let (buf, starts) = pcapng_bytes();
        let strict = read_capture(buf.as_slice()).unwrap();
        assert_eq!(strict.len(), 2);
        for cut in 0..=buf.len() {
            let r = salvage(&buf[..cut]);
            // Packets salvaged = EPBs wholly inside the prefix: EPB 1
            // spans starts[2]..starts[3], EPB 2 spans starts[3]..starts[4].
            let expect = [starts[3], starts[4]].iter().filter(|&&e| cut >= e).count();
            assert_eq!(r.packets_salvaged, expect, "cut {cut}");
            let consumed = starts.iter().rev().find(|&&s| s <= cut).copied().unwrap();
            assert_eq!(r.bytes_consumed, consumed as u64, "cut {cut}");
            assert_eq!(
                r.is_clean(),
                cut == consumed && cut >= starts[1],
                "cut {cut}"
            );
        }
        // The full stream matches the strict reader exactly.
        let r = salvage(&buf);
        assert_eq!(r.trace.packets(), strict.packets());
    }

    #[test]
    fn corrupt_length_field_cannot_drive_allocation() {
        let mut buf = pcap_bytes();
        // Corrupt the second record's caplen to u32::MAX.
        let off = 24 + (16 + 28) + 8;
        buf[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let r = salvage(&buf);
        assert_eq!(r.packets_salvaged, 1);
        assert_eq!(r.faults.len(), 1, "pcap has no resync marker");
        let fault = r.first_fault().expect("fault");
        assert_eq!(fault.offset, 24 + (16 + 28) as u64);
        assert!(matches!(
            fault.error,
            TraceError::OversizedRecord { caplen: u32::MAX }
        ));
    }

    #[test]
    fn garbage_reports_bad_magic_at_offset_zero() {
        let r = salvage(&[0xffu8; 64]);
        assert_eq!(r.packets_salvaged, 0);
        assert_eq!(r.format, "unknown");
        let fault = r.first_fault().expect("fault");
        assert_eq!(fault.offset, 0);
        assert!(matches!(fault.error, TraceError::BadMagic(_)));
    }

    #[test]
    fn short_inputs_salvage_nothing_without_panicking() {
        for len in [0usize, 1, 3] {
            let r = salvage(&vec![0xa1u8; len]);
            assert_eq!(r.packets_salvaged, 0);
            assert!(!r.is_clean());
        }
    }

    /// One complete pcapng section (SHB + IDB + `n` EPBs) with
    /// microsecond timestamps starting at `base_us`.
    fn pcapng_section(base_us: u64, n: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        let block = |buf: &mut Vec<u8>, btype: u32, body: &[u8]| {
            let total = 12 + body.len() as u32;
            buf.extend_from_slice(&btype.to_le_bytes());
            buf.extend_from_slice(&total.to_le_bytes());
            buf.extend_from_slice(body);
            buf.extend_from_slice(&total.to_le_bytes());
        };
        let mut shb = Vec::new();
        shb.extend_from_slice(&pcapng::BOM.to_le_bytes());
        shb.extend_from_slice(&1u16.to_le_bytes());
        shb.extend_from_slice(&0u16.to_le_bytes());
        shb.extend_from_slice(&(-1i64).to_le_bytes());
        block(&mut buf, pcapng::SHB_TYPE, &shb);
        let mut idb = Vec::new();
        idb.extend_from_slice(&101u16.to_le_bytes());
        idb.extend_from_slice(&0u16.to_le_bytes());
        idb.extend_from_slice(&0u32.to_le_bytes());
        block(&mut buf, pcapng::IDB_TYPE, &idb);
        for i in 0..n {
            let ticks = base_us + i as u64 * 100;
            let mut epb = Vec::new();
            epb.extend_from_slice(&0u32.to_le_bytes());
            epb.extend_from_slice(&((ticks >> 32) as u32).to_le_bytes());
            epb.extend_from_slice(&((ticks & 0xffff_ffff) as u32).to_le_bytes());
            epb.extend_from_slice(&28u32.to_le_bytes());
            epb.extend_from_slice(&40u32.to_le_bytes());
            epb.extend_from_slice(&[0u8; 28]);
            block(&mut buf, pcapng::EPB_TYPE, &epb);
        }
        buf
    }

    #[test]
    fn pcapng_resyncs_to_the_next_section_across_garbage() {
        let s1 = pcapng_section(1_000, 2);
        let s2 = pcapng_section(9_000, 3);
        let garbage = [0x5au8; 33];
        let mut buf = s1.clone();
        let fault_at = buf.len();
        buf.extend_from_slice(&garbage);
        let resume_at = buf.len();
        buf.extend_from_slice(&s2);

        let r = salvage(&buf);
        assert_eq!(r.packets_salvaged, 5, "both sections salvaged");
        assert_eq!(r.faults.len(), 1, "one fault per damaged region");
        let fault = r.first_fault().unwrap();
        assert_eq!(fault.offset, fault_at as u64);
        // Skipped garbage is not "consumed".
        assert_eq!(r.bytes_consumed, (buf.len() - garbage.len()) as u64);
        assert!(resume_at > fault_at);
    }

    #[test]
    fn pcapng_reports_one_fault_per_damaged_region() {
        // Three sections, two independently damaged gaps between them.
        let mut buf = pcapng_section(0, 1);
        buf.extend_from_slice(&[0xde; 8]);
        buf.extend_from_slice(&pcapng_section(5_000, 1));
        buf.extend_from_slice(&[0xad; 21]);
        buf.extend_from_slice(&pcapng_section(9_000, 2));
        let r = salvage(&buf);
        assert_eq!(r.packets_salvaged, 4);
        assert_eq!(r.faults.len(), 2);
        assert!(r.faults[0].offset < r.faults[1].offset);
    }

    #[test]
    fn implausible_shb_magic_in_garbage_does_not_resync() {
        // A bare SHB magic with a bad byte-order mark must be skipped
        // by the resync scan, not treated as a section start.
        let mut buf = pcapng_section(0, 1);
        buf.extend_from_slice(&pcapng::SHB_TYPE.to_le_bytes());
        buf.extend_from_slice(&28u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 20]); // bad BOM, filler
        let r = salvage(&buf);
        assert_eq!(r.packets_salvaged, 1);
        // Two faults seen from the same damaged tail is fine; what
        // matters is no packets were invented and offsets ascend.
        assert!(!r.is_clean());
        for pair in r.faults.windows(2) {
            assert!(pair[0].offset < pair[1].offset);
        }
    }

    #[test]
    fn corrupt_block_length_inside_a_section_resumes_at_next_shb() {
        let mut buf = pcapng_section(0, 2);
        let s2_start;
        {
            // Corrupt the *second* EPB's total_len to an oversize value.
            // Block layout: SHB (28) + IDB (20) + EPB (60) + EPB (60).
            let off = 28 + 20 + 60 + 4;
            buf[off..off + 4].copy_from_slice(&(pcapng::MAX_BLOCK + 4).to_le_bytes());
            s2_start = buf.len();
        }
        buf.extend_from_slice(&pcapng_section(7_000, 2));
        let r = salvage(&buf);
        // Packet 1 from section 1 survives, the corrupt EPB is lost,
        // and both packets of section 2 are recovered.
        assert_eq!(r.packets_salvaged, 3);
        assert_eq!(r.faults.len(), 1);
        assert_eq!(r.faults[0].offset, (28 + 20 + 60) as u64);
        assert!(matches!(
            r.faults[0].error,
            TraceError::OversizedRecord { .. }
        ));
        assert!(s2_start > 0);
        // Every salvaged packet is wholly from a valid block.
        let ts: Vec<u64> = r
            .trace
            .packets()
            .iter()
            .map(|p| p.timestamp.as_u64())
            .collect();
        assert_eq!(ts, vec![0, 7_000, 7_100]);
    }

    #[test]
    fn clean_multi_section_stream_matches_strict_and_stays_clean() {
        // Multiple sections are *valid* pcapng; resync must not fire.
        let mut buf = pcapng_section(0, 2);
        buf.extend_from_slice(&pcapng_section(5_000, 2));
        let strict = read_capture(buf.as_slice()).unwrap();
        let r = salvage(&buf);
        assert!(r.is_clean());
        assert_eq!(r.bytes_consumed, buf.len() as u64);
        assert_eq!(r.trace.packets(), strict.packets());
        assert_eq!(r.packets_salvaged, 4);
    }
}
