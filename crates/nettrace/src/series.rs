//! Per-second time series derived from a trace.
//!
//! Table 2 of the paper summarizes three per-second distributions over the
//! hour: packet arrivals (packets/s), byte arrivals (kB/s), and mean
//! per-second packet size. [`PerSecondSeries`] computes all three in one
//! pass over a trace. Seconds are trace-relative: second `i` covers
//! `[i s, (i+1) s)` from the first packet's timestamp floor.

use crate::packet::PacketRecord;
use crate::trace::Trace;

/// Counters for one second of traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SecondStats {
    /// Packets observed in this second.
    pub packets: u64,
    /// Bytes observed in this second.
    pub bytes: u64,
}

impl SecondStats {
    /// Mean packet size within the second; `None` when no packets arrived
    /// (the paper's mean-size distribution is over seconds that saw
    /// traffic).
    #[must_use]
    pub fn mean_size(&self) -> Option<f64> {
        if self.packets > 0 {
            Some(self.bytes as f64 / self.packets as f64)
        } else {
            None
        }
    }
}

/// Per-second aggregation of a trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PerSecondSeries {
    seconds: Vec<SecondStats>,
}

impl PerSecondSeries {
    /// Aggregate a trace into per-second buckets.
    ///
    /// The series spans from second 0 (containing the trace's first packet
    /// timestamp, which is normally 0) through the second containing the
    /// last packet. Interior seconds with no packets are present with zero
    /// counts.
    #[must_use]
    pub fn from_trace(trace: &Trace) -> Self {
        Self::from_packets(trace.packets())
    }

    /// Aggregate a packet slice (e.g. a window view) into per-second
    /// buckets.
    #[must_use]
    pub fn from_packets(packets: &[PacketRecord]) -> Self {
        let mut seconds: Vec<SecondStats> = Vec::new();
        if packets.is_empty() {
            return PerSecondSeries { seconds };
        }
        let last_sec = packets[packets.len() - 1].timestamp.whole_secs() as usize;
        seconds.resize(last_sec + 1, SecondStats::default());
        for p in packets {
            let s = p.timestamp.whole_secs() as usize;
            seconds[s].packets += 1;
            seconds[s].bytes += u64::from(p.size);
        }
        PerSecondSeries { seconds }
    }

    /// Per-second records.
    #[must_use]
    pub fn seconds(&self) -> &[SecondStats] {
        &self.seconds
    }

    /// Number of seconds covered (including interior empty seconds).
    #[must_use]
    pub fn len(&self) -> usize {
        self.seconds.len()
    }

    /// Whether the series is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.seconds.is_empty()
    }

    /// Packets-per-second values, one per second.
    #[must_use]
    pub fn packet_rates(&self) -> Vec<f64> {
        self.seconds.iter().map(|s| s.packets as f64).collect()
    }

    /// Bytes-per-second values, one per second.
    #[must_use]
    pub fn byte_rates(&self) -> Vec<f64> {
        self.seconds.iter().map(|s| s.bytes as f64).collect()
    }

    /// Kilobytes-per-second values (Table 2 reports kB/s).
    #[must_use]
    pub fn kilobyte_rates(&self) -> Vec<f64> {
        self.seconds
            .iter()
            .map(|s| s.bytes as f64 / 1000.0)
            .collect()
    }

    /// Mean per-second packet sizes, skipping seconds with no packets.
    #[must_use]
    pub fn mean_sizes(&self) -> Vec<f64> {
        self.seconds.iter().filter_map(|s| s.mean_size()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Micros;

    fn pkt(t: u64, size: u16) -> PacketRecord {
        PacketRecord::new(Micros(t), size)
    }

    #[test]
    fn empty_trace_gives_empty_series() {
        let s = PerSecondSeries::from_trace(&Trace::empty());
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.packet_rates().is_empty());
    }

    #[test]
    fn packets_land_in_their_seconds() {
        let t = Trace::new(vec![
            pkt(0, 40),
            pkt(999_999, 60),
            pkt(1_000_000, 100),
            pkt(2_500_000, 1500),
        ])
        .unwrap();
        let s = PerSecondSeries::from_trace(&t);
        assert_eq!(s.len(), 3);
        assert_eq!(
            s.seconds()[0],
            SecondStats {
                packets: 2,
                bytes: 100
            }
        );
        assert_eq!(
            s.seconds()[1],
            SecondStats {
                packets: 1,
                bytes: 100
            }
        );
        assert_eq!(
            s.seconds()[2],
            SecondStats {
                packets: 1,
                bytes: 1500
            }
        );
    }

    #[test]
    fn interior_gaps_are_zero_filled() {
        let t = Trace::new(vec![pkt(0, 40), pkt(3_000_000, 40)]).unwrap();
        let s = PerSecondSeries::from_trace(&t);
        assert_eq!(s.len(), 4);
        assert_eq!(s.seconds()[1].packets, 0);
        assert_eq!(s.seconds()[2].packets, 0);
    }

    #[test]
    fn mean_sizes_skip_empty_seconds() {
        let t = Trace::new(vec![pkt(0, 40), pkt(0, 60), pkt(2_000_000, 100)]).unwrap();
        let s = PerSecondSeries::from_trace(&t);
        let m = s.mean_sizes();
        assert_eq!(m.len(), 2); // second 1 had no packets
        assert!((m[0] - 50.0).abs() < 1e-12);
        assert!((m[1] - 100.0).abs() < 1e-12);
    }

    #[test]
    fn rate_vectors_agree_with_counts() {
        let t = Trace::new(vec![pkt(0, 500), pkt(100, 500), pkt(1_200_000, 250)]).unwrap();
        let s = PerSecondSeries::from_trace(&t);
        assert_eq!(s.packet_rates(), vec![2.0, 1.0]);
        assert_eq!(s.byte_rates(), vec![1000.0, 250.0]);
        assert_eq!(s.kilobyte_rates(), vec![1.0, 0.25]);
    }

    #[test]
    fn second_stats_mean_size() {
        assert_eq!(SecondStats::default().mean_size(), None);
        let s = SecondStats {
            packets: 4,
            bytes: 1000,
        };
        assert_eq!(s.mean_size(), Some(250.0));
    }
}
