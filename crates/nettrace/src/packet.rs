//! Packet records: the unit of observation for all sampling and
//! characterization in this workspace.
//!
//! A [`PacketRecord`] captures exactly the header-derived fields the NSFNET
//! statistics pipeline (NNStat on T1, ARTS on T3) extracted per packet:
//! arrival time, IP length, transport protocol, well-known ports, and the
//! source/destination *network numbers* used for the traffic matrix
//! (paper §2, Table 1).

use crate::time::Micros;
use std::fmt;

/// Transport (or network) protocol carried over IP, as categorized by the
/// NSFNET collection objects ("distribution of protocol over IP (e.g. TCP,
/// UDP, ICMP)", paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Protocol {
    /// Transmission Control Protocol (IP proto 6).
    Tcp,
    /// User Datagram Protocol (IP proto 17).
    Udp,
    /// Internet Control Message Protocol (IP proto 1).
    Icmp,
    /// Any other IP protocol, with its protocol number.
    Other(u8),
}

impl Protocol {
    /// The IP protocol number.
    #[must_use]
    pub const fn number(self) -> u8 {
        match self {
            Protocol::Icmp => 1,
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Other(n) => n,
        }
    }

    /// Categorize an IP protocol number.
    #[must_use]
    pub const fn from_number(n: u8) -> Self {
        match n {
            1 => Protocol::Icmp,
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            other => Protocol::Other(other),
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Tcp => write!(f, "TCP"),
            Protocol::Udp => write!(f, "UDP"),
            Protocol::Icmp => write!(f, "ICMP"),
            Protocol::Other(n) => write!(f, "IP#{n}"),
        }
    }
}

/// A single observed packet.
///
/// This is a compact, `Copy` record: traces hold millions of them and the
/// samplers are driven one record at a time, so keeping the record small
/// (32 bytes) matters for iteration speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketRecord {
    /// Arrival timestamp, microseconds since trace start (possibly quantized
    /// by a [`crate::time::ClockModel`]).
    pub timestamp: Micros,
    /// IP packet length in bytes (header + payload), 28..=1500 in the
    /// study's FDDI→T3 environment.
    pub size: u16,
    /// Transport protocol.
    pub protocol: Protocol,
    /// Source port for TCP/UDP, 0 otherwise.
    pub src_port: u16,
    /// Destination port for TCP/UDP, 0 otherwise.
    pub dst_port: u16,
    /// Source network number (classful network identifier used by the
    /// NSFNET traffic matrix objects).
    pub src_net: u16,
    /// Destination network number.
    pub dst_net: u16,
    /// Synthetic flow identifier; 0 means "unassigned" and flow
    /// aggregation falls back to the 5-tuple. Nonzero ids come from the
    /// flow-structured generators (and survive a pcap round trip).
    pub flow_id: u32,
    /// Header flag bits; see [`PacketRecord::FLAG_SYN`].
    pub flags: u8,
}

impl PacketRecord {
    /// TCP SYN bit: set on the first packet of a flow by the
    /// flow-structured generators, the signal the SYN-count flow
    /// estimator scales up.
    pub const FLAG_SYN: u8 = 0x02;

    /// A minimal record with the given timestamp and size; protocol defaults
    /// to TCP and all other fields to zero. Convenient for tests and for
    /// size/interarrival-only analyses.
    #[must_use]
    pub fn new(timestamp: Micros, size: u16) -> Self {
        PacketRecord {
            timestamp,
            size,
            protocol: Protocol::Tcp,
            src_port: 0,
            dst_port: 0,
            src_net: 0,
            dst_net: 0,
            flow_id: 0,
            flags: 0,
        }
    }

    /// Builder-style: set protocol.
    #[must_use]
    pub fn with_protocol(mut self, protocol: Protocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Builder-style: set source/destination ports.
    #[must_use]
    pub fn with_ports(mut self, src: u16, dst: u16) -> Self {
        self.src_port = src;
        self.dst_port = dst;
        self
    }

    /// Builder-style: set source/destination network numbers.
    #[must_use]
    pub fn with_nets(mut self, src: u16, dst: u16) -> Self {
        self.src_net = src;
        self.dst_net = dst;
        self
    }

    /// Builder-style: assign a synthetic flow id and mark whether this is
    /// the flow's first packet (sets the SYN bit).
    #[must_use]
    pub fn with_flow(mut self, flow_id: u32, first: bool) -> Self {
        self.flow_id = flow_id;
        if first {
            self.flags |= Self::FLAG_SYN;
        } else {
            self.flags &= !Self::FLAG_SYN;
        }
        self
    }

    /// Whether the SYN bit is set (flow-start marker).
    #[must_use]
    pub fn syn(&self) -> bool {
        self.flags & Self::FLAG_SYN != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_number_roundtrip() {
        for n in 0u8..=255 {
            assert_eq!(Protocol::from_number(n).number(), n);
        }
    }

    #[test]
    fn protocol_well_known() {
        assert_eq!(Protocol::from_number(6), Protocol::Tcp);
        assert_eq!(Protocol::from_number(17), Protocol::Udp);
        assert_eq!(Protocol::from_number(1), Protocol::Icmp);
        assert_eq!(Protocol::from_number(89), Protocol::Other(89));
    }

    #[test]
    fn protocol_display() {
        assert_eq!(Protocol::Tcp.to_string(), "TCP");
        assert_eq!(Protocol::Other(89).to_string(), "IP#89");
    }

    #[test]
    fn record_is_small() {
        // Samplers iterate millions of these; the size is part of the
        // substrate's contract.
        assert!(std::mem::size_of::<PacketRecord>() <= 32);
    }

    #[test]
    fn builder_chain() {
        let p = PacketRecord::new(Micros(400), 552)
            .with_protocol(Protocol::Udp)
            .with_ports(53, 2049)
            .with_nets(192, 35);
        assert_eq!(p.timestamp, Micros(400));
        assert_eq!(p.size, 552);
        assert_eq!(p.protocol, Protocol::Udp);
        assert_eq!((p.src_port, p.dst_port), (53, 2049));
        assert_eq!((p.src_net, p.dst_net), (192, 35));
        assert_eq!(p.flow_id, 0);
        assert!(!p.syn());
    }

    #[test]
    fn flow_builder_sets_and_clears_syn() {
        let p = PacketRecord::new(Micros(0), 40).with_flow(7, true);
        assert_eq!(p.flow_id, 7);
        assert!(p.syn());
        let q = p.with_flow(7, false);
        assert!(!q.syn());
        assert_eq!(q.flow_id, 7);
    }
}
