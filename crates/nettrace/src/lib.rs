//! # nettrace — packet record and trace substrate
//!
//! This crate provides the data model that every other crate in the
//! workspace builds on: packet records, traces with nondecreasing
//! timestamps, capture-clock models, libpcap file I/O, per-second
//! time series, and integer-domain histograms.
//!
//! The design follows the conventions of the SIGCOMM 1993 study this
//! workspace reproduces (Claffy, Polyzos, Braun, *Application of Sampling
//! Methodologies to Network Traffic Characterization*):
//!
//! * timestamps are in **microseconds** since the start of the trace;
//! * the capture clock of the original SDSC/E-NSS monitor had a
//!   **400 µs granularity**, modeled by [`time::ClockModel`];
//! * a trace is treated as a fixed *parent population* from which samples
//!   are drawn by the `sampling` crate.
//!
//! The crate is synchronous and allocation-conscious: a [`packet::PacketRecord`]
//! is a small `Copy` struct and a [`trace::Trace`] is a flat `Vec` of them,
//! so a one-hour, 1.6-million-packet population fits comfortably in memory
//! and iterates at cache speed.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod error;
pub mod flowtable;
pub mod histogram;
pub mod lossy;
pub mod merge;
pub mod packet;
pub mod pcap;
pub mod pcapng;
pub mod series;
pub mod stream;
pub mod time;
pub mod trace;

pub use batch::PacketBatch;
pub use error::TraceError;
pub use flowtable::{FlowKey, FlowRecord, FlowTable};
pub use histogram::{BinSpec, Histogram};
pub use lossy::{read_capture_lossy, IngestFault, IngestReport};
pub use merge::{merge, rebase, shift};
pub use packet::{PacketRecord, Protocol};
pub use pcapng::read_capture;
pub use series::{PerSecondSeries, SecondStats};
pub use stream::CaptureStream;
pub use time::{ClockModel, Micros};
pub use trace::{Trace, TraceStats};

/// Record read-path metrics shared by the pcap and pcapng readers:
/// packets and traffic bytes on success, the malformed-record counter on
/// failure (plus however many packets parsed before a truncation).
pub(crate) fn observe_read(format: &str, result: &Result<Trace, TraceError>) {
    let labels = [("format", format)];
    match result {
        Ok(trace) => {
            obskit::counter_labeled("nettrace_packets_read_total", &labels).add(trace.len() as u64);
            obskit::counter_labeled("nettrace_bytes_read_total", &labels).add(trace.total_bytes());
        }
        Err(e) => {
            obskit::counter_labeled("nettrace_malformed_records_total", &labels).inc();
            if let TraceError::TruncatedRecord { packets_read } = e {
                obskit::counter_labeled("nettrace_packets_read_total", &labels)
                    .add(*packets_read as u64);
            }
        }
    }
}
