//! Merging traces from multiple capture points.
//!
//! The T3 node architecture has "multiple subsystems, including those
//! connected to T3, Ethernet, and FDDI external interfaces, forwarding
//! to the RS/6000 processor in parallel" (paper §2): the stream the
//! statistics processor sees is a time-ordered merge of several
//! interfaces' selections. [`merge`] performs that k-way merge; [`shift`]
//! and [`rebase`] align traces captured with different time origins.

use crate::packet::PacketRecord;
use crate::time::Micros;
use crate::trace::Trace;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// K-way merge of traces into one time-ordered trace.
///
/// Ties are broken by input order (stable for equal timestamps), so a
/// merge of already-merged traces is deterministic.
#[must_use]
pub fn merge(traces: &[&Trace]) -> Trace {
    // (timestamp, source index, position) min-heap.
    let mut heap: BinaryHeap<Reverse<(Micros, usize, usize)>> = BinaryHeap::new();
    let mut total = 0;
    for (src, t) in traces.iter().enumerate() {
        total += t.len();
        if !t.is_empty() {
            heap.push(Reverse((t.packets()[0].timestamp, src, 0)));
        }
    }
    let mut out: Vec<PacketRecord> = Vec::with_capacity(total);
    while let Some(Reverse((_, src, pos))) = heap.pop() {
        let t = traces[src];
        out.push(t.packets()[pos]);
        if pos + 1 < t.len() {
            heap.push(Reverse((t.packets()[pos + 1].timestamp, src, pos + 1)));
        }
    }
    Trace::new(out).expect("merge preserves ordering")
}

/// Shift every timestamp forward by `offset` (aligning a capture that
/// started later).
#[must_use]
pub fn shift(trace: &Trace, offset: Micros) -> Trace {
    let packets = trace
        .iter()
        .map(|p| {
            let mut q = *p;
            q.timestamp = p.timestamp + offset;
            q
        })
        .collect();
    Trace::new(packets).expect("shifting preserves ordering")
}

/// Rebase so the first packet is at time zero (trace-relative time, the
/// convention of this workspace's analyses).
#[must_use]
pub fn rebase(trace: &Trace) -> Trace {
    let Some(start) = trace.start() else {
        return Trace::empty();
    };
    let packets = trace
        .iter()
        .map(|p| {
            let mut q = *p;
            q.timestamp = p.timestamp.saturating_sub(start);
            q
        })
        .collect();
    Trace::new(packets).expect("rebasing preserves ordering")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(t: u64, size: u16) -> PacketRecord {
        PacketRecord::new(Micros(t), size)
    }

    fn trace(ts: &[u64]) -> Trace {
        Trace::new(ts.iter().map(|&t| pkt(t, 40)).collect()).unwrap()
    }

    #[test]
    fn merge_interleaves_in_time_order() {
        let a = trace(&[0, 400, 1000]);
        let b = trace(&[200, 500, 2000]);
        let m = merge(&[&a, &b]);
        let ts: Vec<u64> = m.iter().map(|p| p.timestamp.as_u64()).collect();
        assert_eq!(ts, vec![0, 200, 400, 500, 1000, 2000]);
    }

    #[test]
    fn merge_handles_empty_and_single_inputs() {
        let a = trace(&[1, 2]);
        let empty = Trace::empty();
        assert_eq!(merge(&[&a, &empty]).len(), 2);
        assert_eq!(merge(&[&empty]).len(), 0);
        assert_eq!(merge(&[]).len(), 0);
    }

    #[test]
    fn merge_is_stable_for_ties() {
        let a = Trace::new(vec![pkt(100, 1)]).unwrap();
        let b = Trace::new(vec![pkt(100, 2)]).unwrap();
        let m = merge(&[&a, &b]);
        // Equal timestamps: source 0 first.
        assert_eq!(m.packets()[0].size, 1);
        assert_eq!(m.packets()[1].size, 2);
    }

    #[test]
    fn merge_three_sources_conserves_packets() {
        let a = trace(&[0, 300, 600, 900]);
        let b = trace(&[100, 400, 700]);
        let c = trace(&[200, 500, 800, 1100, 1400]);
        let m = merge(&[&a, &b, &c]);
        assert_eq!(m.len(), 12);
        assert!(m
            .packets()
            .windows(2)
            .all(|w| w[0].timestamp <= w[1].timestamp));
    }

    #[test]
    fn shift_moves_origin() {
        let a = trace(&[0, 100]);
        let s = shift(&a, Micros(5000));
        assert_eq!(s.start(), Some(Micros(5000)));
        assert_eq!(s.end(), Some(Micros(5100)));
        assert_eq!(s.duration(), a.duration());
    }

    #[test]
    fn rebase_zeroes_the_start() {
        let a = trace(&[7000, 7400, 9000]);
        let r = rebase(&a);
        assert_eq!(r.start(), Some(Micros::ZERO));
        assert_eq!(r.interarrivals(), a.interarrivals());
        assert!(rebase(&Trace::empty()).is_empty());
    }

    #[test]
    fn shifted_captures_merge_correctly() {
        // Two interfaces whose captures started 250us apart.
        let fddi = trace(&[0, 1000]);
        let ethernet = shift(&trace(&[0, 1000]), Micros(250));
        let m = merge(&[&fddi, &ethernet]);
        let ts: Vec<u64> = m.iter().map(|p| p.timestamp.as_u64()).collect();
        assert_eq!(ts, vec![0, 250, 1000, 1250]);
    }
}
