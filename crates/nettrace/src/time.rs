//! Time representation for packet traces.
//!
//! All timestamps are microseconds since the start of the trace, stored in
//! a [`Micros`] newtype. The original study's capture hardware had a 400 µs
//! clock granularity (paper §7.1.2, Table 3 caption); [`ClockModel`]
//! reproduces that quantization so interarrival-time distributions have the
//! same discrete support as the paper's.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in time (or a duration), in microseconds.
///
/// `Micros` is used both for absolute trace-relative timestamps and for
/// durations (e.g. interarrival times); the arithmetic provided covers both
/// uses. Saturating subtraction is deliberate: a quantized pair of
/// timestamps may compare equal, and the interarrival time is then zero,
/// never negative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Micros(pub u64);

impl Micros {
    /// Zero microseconds (start of trace).
    pub const ZERO: Micros = Micros(0);

    /// Construct from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        Micros(secs * 1_000_000)
    }

    /// Construct from whole milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        Micros(ms * 1_000)
    }

    /// The raw microsecond count.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Value in (fractional) seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whole seconds elapsed (floor).
    #[must_use]
    pub const fn whole_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Saturating difference, for interarrival computation on quantized
    /// timestamps.
    #[must_use]
    pub const fn saturating_sub(self, other: Micros) -> Micros {
        Micros(self.0.saturating_sub(other.0))
    }
}

impl Add for Micros {
    type Output = Micros;
    fn add(self, rhs: Micros) -> Micros {
        Micros(self.0 + rhs.0)
    }
}

impl AddAssign for Micros {
    fn add_assign(&mut self, rhs: Micros) {
        self.0 += rhs.0;
    }
}

impl Sub for Micros {
    type Output = Micros;
    /// Panics in debug builds on underflow; use
    /// [`Micros::saturating_sub`] when operands may be equal-after-quantization.
    fn sub(self, rhs: Micros) -> Micros {
        Micros(self.0 - rhs.0)
    }
}

impl fmt::Display for Micros {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

/// A model of the capture clock used to timestamp packets.
///
/// The SDSC monitor that produced the paper's trace reported timestamps at
/// a 400 µs granularity. Quantization floors a timestamp to the nearest
/// lower clock tick, which is what a free-running tick counter sampled at
/// packet arrival produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockModel {
    /// Clock tick length in microseconds. `1` means an ideal clock.
    tick_us: u64,
}

impl ClockModel {
    /// An ideal, microsecond-resolution clock (no quantization).
    pub const IDEAL: ClockModel = ClockModel { tick_us: 1 };

    /// The 400 µs clock of the paper's capture environment.
    pub const SDSC_1993: ClockModel = ClockModel { tick_us: 400 };

    /// A clock with the given tick length in microseconds.
    ///
    /// # Panics
    /// Panics if `tick_us` is zero.
    #[must_use]
    pub fn new(tick_us: u64) -> Self {
        assert!(tick_us > 0, "clock tick must be positive");
        ClockModel { tick_us }
    }

    /// The tick length in microseconds.
    #[must_use]
    pub const fn tick_us(self) -> u64 {
        self.tick_us
    }

    /// Quantize a timestamp to this clock (floor to tick).
    #[must_use]
    pub const fn quantize(self, t: Micros) -> Micros {
        Micros(t.0 / self.tick_us * self.tick_us)
    }
}

impl Default for ClockModel {
    fn default() -> Self {
        ClockModel::IDEAL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micros_constructors() {
        assert_eq!(Micros::from_secs(2).as_u64(), 2_000_000);
        assert_eq!(Micros::from_millis(3).as_u64(), 3_000);
        assert_eq!(Micros::ZERO.as_u64(), 0);
    }

    #[test]
    fn micros_arithmetic() {
        let a = Micros(1500);
        let b = Micros(400);
        assert_eq!(a + b, Micros(1900));
        assert_eq!(a - b, Micros(1100));
        assert_eq!(b.saturating_sub(a), Micros::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, Micros(1900));
    }

    #[test]
    fn micros_seconds_views() {
        let t = Micros(2_500_000);
        assert_eq!(t.whole_secs(), 2);
        assert!((t.as_secs_f64() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn micros_ordering_and_display() {
        assert!(Micros(1) < Micros(2));
        assert_eq!(Micros(42).to_string(), "42us");
    }

    #[test]
    fn ideal_clock_is_identity() {
        let c = ClockModel::IDEAL;
        for t in [0u64, 1, 399, 400, 12345] {
            assert_eq!(c.quantize(Micros(t)), Micros(t));
        }
    }

    #[test]
    fn sdsc_clock_floors_to_400us() {
        let c = ClockModel::SDSC_1993;
        assert_eq!(c.quantize(Micros(0)), Micros(0));
        assert_eq!(c.quantize(Micros(399)), Micros(0));
        assert_eq!(c.quantize(Micros(400)), Micros(400));
        assert_eq!(c.quantize(Micros(401)), Micros(400));
        assert_eq!(c.quantize(Micros(1_000_000)), Micros(999_600 + 400));
    }

    #[test]
    fn quantization_is_idempotent() {
        let c = ClockModel::new(400);
        for t in [0u64, 1, 399, 400, 799, 800, 123_456_789] {
            let q = c.quantize(Micros(t));
            assert_eq!(c.quantize(q), q);
        }
    }

    #[test]
    #[should_panic(expected = "clock tick must be positive")]
    fn zero_tick_panics() {
        let _ = ClockModel::new(0);
    }
}
