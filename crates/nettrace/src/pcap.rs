//! Classic libpcap file format reader and writer.
//!
//! The study's trace was captured to disk (650 MB for 24 hours); where a
//! real trace is available this module lets the workspace consume it, and
//! the synthetic generator can export its traces for inspection in
//! standard tools (tcpdump/Wireshark), mirroring the `--pcap` facility of
//! the smoltcp examples this workspace's style follows.
//!
//! Supported: the classic (non-ng) format, microsecond and nanosecond
//! timestamp magics, both byte orders. Written files use the
//! `LINKTYPE_RAW` (101) link layer carrying a synthetic IPv4 header, so a
//! [`PacketRecord`]'s protocol, ports and network numbers survive a
//! write/read round trip even though no real payload exists.

use crate::error::TraceError;
use crate::packet::{PacketRecord, Protocol};
use crate::time::Micros;
use crate::trace::Trace;
use std::io::{Read, Write};

/// Microsecond-timestamp pcap magic.
pub(crate) const MAGIC_US: u32 = 0xa1b2_c3d4;
/// Nanosecond-timestamp pcap magic.
pub(crate) const MAGIC_NS: u32 = 0xa1b2_3c4d;
/// `LINKTYPE_RAW`: packets begin directly with an IPv4/IPv6 header.
const LINKTYPE_RAW: u32 = 101;
/// Sanity cap on record capture length: real WAN packets in this study are
/// at most 1500 bytes; 256 KiB tolerates jumbo captures while rejecting
/// corrupt headers.
pub(crate) const MAX_CAPLEN: u32 = 256 * 1024;
/// Bytes of synthetic header we write per packet: IPv4 (20) + 8 bytes of
/// transport header (enough for ports).
const WRITE_CAPLEN: usize = 28;

/// Byte order of a parsed pcap stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Endian {
    Little,
    Big,
}

fn u16_from(e: Endian, b: [u8; 2]) -> u16 {
    match e {
        Endian::Little => u16::from_le_bytes(b),
        Endian::Big => u16::from_be_bytes(b),
    }
}

pub(crate) fn u32_from(e: Endian, b: [u8; 4]) -> u32 {
    match e {
        Endian::Little => u32::from_le_bytes(b),
        Endian::Big => u32::from_be_bytes(b),
    }
}

/// Write a trace as a classic little-endian, microsecond pcap file.
///
/// Each record carries a 28-byte synthetic `LINKTYPE_RAW` IPv4 header whose
/// total-length field is the packet's true size, so `orig_len`, protocol,
/// ports and network numbers are all recoverable by [`read_pcap`].
///
/// # Errors
/// Propagates I/O errors from the underlying writer.
pub fn write_pcap<W: Write>(w: W, trace: &Trace) -> Result<(), TraceError> {
    let _span = obskit::span("nettrace_pcap_write");
    let result = write_pcap_records(w, trace);
    if result.is_ok() {
        obskit::counter("nettrace_packets_written_total").add(trace.len() as u64);
    }
    result
}

fn write_pcap_records<W: Write>(mut w: W, trace: &Trace) -> Result<(), TraceError> {
    write_pcap_header(&mut w)?;
    for p in trace.iter() {
        write_pcap_record(&mut w, p)?;
    }
    Ok(())
}

/// Write the 24-byte classic pcap global header (little-endian,
/// microsecond timestamps, `LINKTYPE_RAW`).
///
/// Exposed so incremental producers (the rate-paced replay source in
/// netsynth) emit byte-identical streams to [`write_pcap`] without
/// materializing a [`Trace`].
///
/// # Errors
/// Propagates I/O errors from the underlying writer.
pub fn write_pcap_header<W: Write>(mut w: W) -> Result<(), TraceError> {
    w.write_all(&MAGIC_US.to_le_bytes())?;
    w.write_all(&2u16.to_le_bytes())?; // version major
    w.write_all(&4u16.to_le_bytes())?; // version minor
    w.write_all(&0i32.to_le_bytes())?; // thiszone
    w.write_all(&0u32.to_le_bytes())?; // sigfigs
    w.write_all(&(WRITE_CAPLEN as u32).to_le_bytes())?; // snaplen
    w.write_all(&LINKTYPE_RAW.to_le_bytes())?;
    Ok(())
}

/// Write one record (header + synthetic `LINKTYPE_RAW` IPv4 payload),
/// exactly as [`write_pcap`] would.
///
/// # Errors
/// Propagates I/O errors from the underlying writer.
pub fn write_pcap_record<W: Write>(mut w: W, p: &PacketRecord) -> Result<(), TraceError> {
    let ts = p.timestamp.as_u64();
    let sec = (ts / 1_000_000) as u32;
    let usec = (ts % 1_000_000) as u32;
    let caplen = WRITE_CAPLEN.min(usize::from(p.size.max(28))) as u32;
    w.write_all(&sec.to_le_bytes())?;
    w.write_all(&usec.to_le_bytes())?;
    w.write_all(&caplen.to_le_bytes())?;
    w.write_all(&u32::from(p.size).to_le_bytes())?;
    w.write_all(&synth_header(p)[..caplen as usize])?;
    Ok(())
}

/// Build the synthetic 28-byte IPv4 + transport header for a record.
fn synth_header(p: &PacketRecord) -> [u8; WRITE_CAPLEN] {
    let mut h = [0u8; WRITE_CAPLEN];
    h[0] = 0x45; // version 4, IHL 5
                 // TOS byte carries the synthetic flag bits (SYN marker); harmless to
                 // standard tools and recoverable on read, like the 10.x.x.1
                 // network-number encoding below.
    h[1] = p.flags;
    h[2..4].copy_from_slice(&p.size.to_be_bytes()); // total length
    h[8] = 64; // TTL
    h[9] = p.protocol.number();
    // Addresses: 10.<net_hi>.<net_lo>.1 — encodes the classful "network
    // number" used by the traffic-matrix objects.
    h[12] = 10;
    h[13..15].copy_from_slice(&p.src_net.to_be_bytes());
    h[15] = 1;
    h[16] = 10;
    h[17..19].copy_from_slice(&p.dst_net.to_be_bytes());
    h[19] = 1;
    // First 8 bytes of TCP/UDP header: source and destination ports,
    // then the synthetic flow id in the TCP sequence-number slot.
    h[20..22].copy_from_slice(&p.src_port.to_be_bytes());
    h[22..24].copy_from_slice(&p.dst_port.to_be_bytes());
    h[24..28].copy_from_slice(&p.flow_id.to_be_bytes());
    h
}

/// Parse a record's synthetic (or real) IPv4 header back into packet fields.
pub(crate) fn parse_ipv4(data: &[u8], orig_len: u32, ts: Micros) -> PacketRecord {
    let mut rec = PacketRecord::new(ts, orig_len.min(u32::from(u16::MAX)) as u16);
    if data.len() >= 20 && data[0] >> 4 == 4 {
        rec.protocol = Protocol::from_number(data[9]);
        rec.flags = data[1];
        rec.src_net = u16::from_be_bytes([data[13], data[14]]);
        rec.dst_net = u16::from_be_bytes([data[17], data[18]]);
        let ihl = usize::from(data[0] & 0x0f) * 4;
        let total_len = u16::from_be_bytes([data[2], data[3]]);
        if total_len > 0 {
            rec.size = total_len;
        }
        if matches!(rec.protocol, Protocol::Tcp | Protocol::Udp) && data.len() >= ihl + 4 {
            rec.src_port = u16::from_be_bytes([data[ihl], data[ihl + 1]]);
            rec.dst_port = u16::from_be_bytes([data[ihl + 2], data[ihl + 3]]);
        }
        if data.len() >= ihl + 8 {
            rec.flow_id =
                u32::from_be_bytes([data[ihl + 4], data[ihl + 5], data[ihl + 6], data[ihl + 7]]);
        }
    }
    rec
}

/// Read a classic pcap stream into a [`Trace`].
///
/// Timestamps are absolute microseconds from the pcap epoch values;
/// call [`Trace::from_unordered`]-style rebasing downstream if a
/// trace-relative timeline is wanted. Packets are defensively sorted if
/// the capture interleaved timestamps (multi-interface captures do this).
///
/// # Errors
/// * [`TraceError::BadMagic`] if the stream is not pcap;
/// * [`TraceError::TruncatedRecord`] if it ends mid-record;
/// * [`TraceError::OversizedRecord`] on an implausible capture length;
/// * [`TraceError::Io`] on underlying read failures.
pub fn read_pcap<R: Read>(mut r: R) -> Result<Trace, TraceError> {
    let mut magic = [0u8; 4];
    // A stream shorter than the magic is a truncated capture, not an I/O
    // failure: keep the error typed so callers can distinguish.
    if !matches!(read_exact_or_eof(&mut r, &mut magic), ReadOutcome::Full) {
        return Err(TraceError::TruncatedRecord { packets_read: 0 });
    }
    read_pcap_with_magic(magic, r)
}

/// Continue reading a classic pcap stream whose 4 magic bytes were
/// already consumed (the format-sniffing entry point
/// [`crate::pcapng::read_capture`] uses this).
pub(crate) fn read_pcap_with_magic<R: Read>(magic: [u8; 4], r: R) -> Result<Trace, TraceError> {
    let _span = obskit::span("nettrace_pcap_read");
    let result = read_pcap_records(magic, r);
    crate::observe_read("pcap", &result);
    result
}

/// Classify the 4 magic bytes of a classic pcap stream: byte order and
/// whether fractional timestamps are nanoseconds.
pub(crate) fn sniff_magic(magic: [u8; 4]) -> Option<(Endian, bool)> {
    match (u32::from_le_bytes(magic), u32::from_be_bytes(magic)) {
        (MAGIC_US, _) => Some((Endian::Little, false)),
        (MAGIC_NS, _) => Some((Endian::Little, true)),
        (_, MAGIC_US) => Some((Endian::Big, false)),
        (_, MAGIC_NS) => Some((Endian::Big, true)),
        _ => None,
    }
}

fn read_pcap_records<R: Read>(magic: [u8; 4], mut r: R) -> Result<Trace, TraceError> {
    let Some((endian, nanos)) = sniff_magic(magic) else {
        return Err(TraceError::BadMagic(u32::from_le_bytes(magic)));
    };

    // Remainder of the 24-byte global header. Ending inside it is a
    // truncated capture, not an I/O failure.
    let mut rest = [0u8; 20];
    if !matches!(read_exact_or_eof(&mut r, &mut rest), ReadOutcome::Full) {
        return Err(TraceError::TruncatedRecord { packets_read: 0 });
    }
    let _version_major = u16_from(endian, [rest[0], rest[1]]);
    // thiszone/sigfigs/snaplen/linktype are not needed for decoding records.

    let mut packets = Vec::new();
    loop {
        let mut rec_hdr = [0u8; 16];
        match read_exact_or_eof(&mut r, &mut rec_hdr) {
            ReadOutcome::Eof => break,
            ReadOutcome::Partial => {
                return Err(TraceError::TruncatedRecord {
                    packets_read: packets.len(),
                })
            }
            ReadOutcome::Full => {}
        }
        let sec = u32_from(endian, [rec_hdr[0], rec_hdr[1], rec_hdr[2], rec_hdr[3]]);
        let frac = u32_from(endian, [rec_hdr[4], rec_hdr[5], rec_hdr[6], rec_hdr[7]]);
        let caplen = u32_from(endian, [rec_hdr[8], rec_hdr[9], rec_hdr[10], rec_hdr[11]]);
        let orig_len = u32_from(endian, [rec_hdr[12], rec_hdr[13], rec_hdr[14], rec_hdr[15]]);
        if caplen > MAX_CAPLEN {
            return Err(TraceError::OversizedRecord { caplen });
        }
        let mut data = vec![0u8; caplen as usize];
        if !matches!(read_exact_or_eof(&mut r, &mut data), ReadOutcome::Full) {
            return Err(TraceError::TruncatedRecord {
                packets_read: packets.len(),
            });
        }
        let usec = if nanos {
            u64::from(frac) / 1000
        } else {
            u64::from(frac)
        };
        let ts = Micros(u64::from(sec) * 1_000_000 + usec);
        packets.push(parse_ipv4(&data, orig_len, ts));
    }
    Ok(Trace::from_unordered(packets))
}

pub(crate) enum ReadOutcome {
    Full,
    Partial,
    Eof,
}

/// Read exactly `buf.len()` bytes, distinguishing clean EOF (zero bytes)
/// from truncation (some bytes then EOF).
pub(crate) fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> ReadOutcome {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Partial
                }
            }
            Ok(n) => filled += n,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return ReadOutcome::Partial,
        }
    }
    ReadOutcome::Full
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Protocol;

    fn sample_trace() -> Trace {
        Trace::new(vec![
            PacketRecord::new(Micros(0), 40)
                .with_protocol(Protocol::Tcp)
                .with_ports(1023, 23)
                .with_nets(192, 35)
                .with_flow(7, true),
            PacketRecord::new(Micros(2358), 552)
                .with_protocol(Protocol::Udp)
                .with_ports(53, 53)
                .with_nets(16, 128)
                .with_flow(u32::MAX, false),
            PacketRecord::new(Micros(1_000_000), 1500).with_protocol(Protocol::Icmp),
        ])
        .unwrap()
    }

    #[test]
    fn roundtrip_preserves_records() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_pcap(&mut buf, &t).unwrap();
        let back = read_pcap(buf.as_slice()).unwrap();
        assert_eq!(back.len(), t.len());
        for (a, b) in t.iter().zip(back.iter()) {
            assert_eq!(a.timestamp, b.timestamp);
            assert_eq!(a.size, b.size);
            assert_eq!(a.protocol, b.protocol);
            assert_eq!(a.src_port, b.src_port);
            assert_eq!(a.dst_port, b.dst_port);
            assert_eq!(a.src_net, b.src_net);
            assert_eq!(a.dst_net, b.dst_net);
            assert_eq!(a.flow_id, b.flow_id);
            assert_eq!(a.flags, b.flags);
        }
    }

    #[test]
    fn empty_trace_roundtrip() {
        let mut buf = Vec::new();
        write_pcap(&mut buf, &Trace::empty()).unwrap();
        assert_eq!(buf.len(), 24); // header only
        let back = read_pcap(buf.as_slice()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn short_inputs_report_truncation_not_io() {
        // 0-, 1- and 3-byte streams cannot even carry the magic: the
        // reader must say "truncated", never surface a raw I/O error.
        for len in [0usize, 1, 3] {
            let bytes = vec![0xa1u8; len];
            assert!(
                matches!(
                    read_pcap(bytes.as_slice()),
                    Err(TraceError::TruncatedRecord { packets_read: 0 })
                ),
                "len {len}"
            );
        }
        // A valid magic followed by a truncated global header is also a
        // truncation, not Io.
        let mut bytes = MAGIC_US.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 7]);
        assert!(matches!(
            read_pcap(bytes.as_slice()),
            Err(TraceError::TruncatedRecord { packets_read: 0 })
        ));
    }

    #[test]
    fn rejects_garbage_magic() {
        let garbage = [0u8; 24];
        assert!(matches!(
            read_pcap(&garbage[..]),
            Err(TraceError::BadMagic(_))
        ));
    }

    #[test]
    fn detects_truncated_record() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_pcap(&mut buf, &t).unwrap();
        buf.truncate(buf.len() - 5);
        match read_pcap(buf.as_slice()) {
            Err(TraceError::TruncatedRecord { packets_read }) => assert_eq!(packets_read, 2),
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn detects_truncated_header() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_pcap(&mut buf, &t).unwrap();
        // Cut into the second record's 16-byte header.
        buf.truncate(24 + 16 + WRITE_CAPLEN + 7);
        assert!(matches!(
            read_pcap(buf.as_slice()),
            Err(TraceError::TruncatedRecord { packets_read: 1 })
        ));
    }

    #[test]
    fn rejects_oversized_caplen() {
        let mut buf = Vec::new();
        write_pcap(&mut buf, &Trace::empty()).unwrap();
        // Append a record header declaring a huge caplen.
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&(MAX_CAPLEN + 1).to_le_bytes());
        buf.extend_from_slice(&40u32.to_le_bytes());
        assert!(matches!(
            read_pcap(buf.as_slice()),
            Err(TraceError::OversizedRecord { .. })
        ));
    }

    #[test]
    fn reads_big_endian_and_nanosecond_streams() {
        // Hand-build a big-endian, nanosecond-magic stream with one record.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_NS.to_be_bytes());
        buf.extend_from_slice(&2u16.to_be_bytes());
        buf.extend_from_slice(&4u16.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes()); // thiszone
        buf.extend_from_slice(&0u32.to_be_bytes()); // sigfigs
        buf.extend_from_slice(&65535u32.to_be_bytes()); // snaplen
        buf.extend_from_slice(&LINKTYPE_RAW.to_be_bytes());
        // record: ts = 1s + 500_000ns -> 1_000_500us
        buf.extend_from_slice(&1u32.to_be_bytes());
        buf.extend_from_slice(&500_000u32.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes()); // caplen 0 (headerless)
        buf.extend_from_slice(&576u32.to_be_bytes()); // orig_len
        let t = read_pcap(buf.as_slice()).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.packets()[0].timestamp, Micros(1_000_500));
        assert_eq!(t.packets()[0].size, 576);
    }

    #[test]
    fn non_ipv4_payload_falls_back_to_orig_len() {
        // A record whose payload is not IPv4 (version nibble 6): parse
        // falls back to orig_len and zeroed fields.
        let mut buf = Vec::new();
        write_pcap(&mut buf, &Trace::empty()).unwrap();
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&100u32.to_le_bytes());
        buf.extend_from_slice(&20u32.to_le_bytes()); // caplen 20
        buf.extend_from_slice(&1280u32.to_le_bytes()); // orig_len
        let mut payload = [0u8; 20];
        payload[0] = 0x60; // IPv6 version nibble
        buf.extend_from_slice(&payload);
        let t = read_pcap(buf.as_slice()).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.packets()[0].size, 1280);
        assert_eq!(t.packets()[0].src_port, 0);
    }

    #[test]
    fn short_caplen_record_keeps_protocol_but_not_ports() {
        // caplen 20: the IPv4 header fits but the transport header does
        // not; protocol and nets parse, ports stay zero.
        let t = Trace::new(vec![PacketRecord::new(Micros(0), 40)
            .with_protocol(Protocol::Tcp)
            .with_ports(1024, 23)
            .with_nets(5, 9)])
        .unwrap();
        let mut buf = Vec::new();
        write_pcap(&mut buf, &t).unwrap();
        // Rewrite the record's caplen from 28 to 20 and drop 8 bytes.
        let rec_hdr = 24;
        buf[rec_hdr + 8..rec_hdr + 12].copy_from_slice(&20u32.to_le_bytes());
        buf.truncate(rec_hdr + 16 + 20);
        let back = read_pcap(buf.as_slice()).unwrap();
        let p = back.packets()[0];
        assert_eq!(p.protocol, Protocol::Tcp);
        assert_eq!((p.src_net, p.dst_net), (5, 9));
        assert_eq!((p.src_port, p.dst_port), (0, 0));
    }

    #[test]
    fn zero_total_length_field_uses_orig_len() {
        // A capture tool that zeroes the IPv4 total-length field: the
        // record header's orig_len wins.
        let t = Trace::new(vec![PacketRecord::new(Micros(0), 576)]).unwrap();
        let mut buf = Vec::new();
        write_pcap(&mut buf, &t).unwrap();
        // Zero the total-length bytes inside the synthetic IPv4 header.
        let data_start = 24 + 16;
        buf[data_start + 2] = 0;
        buf[data_start + 3] = 0;
        let back = read_pcap(buf.as_slice()).unwrap();
        assert_eq!(back.packets()[0].size, 576);
    }

    #[test]
    fn out_of_order_capture_is_sorted() {
        // Little-endian us stream with two records out of order.
        let mut buf = Vec::new();
        write_pcap(&mut buf, &Trace::empty()).unwrap();
        for (sec, usec) in [(5u32, 0u32), (1, 0)] {
            buf.extend_from_slice(&sec.to_le_bytes());
            buf.extend_from_slice(&usec.to_le_bytes());
            buf.extend_from_slice(&0u32.to_le_bytes());
            buf.extend_from_slice(&40u32.to_le_bytes());
        }
        let t = read_pcap(buf.as_slice()).unwrap();
        assert_eq!(t.packets()[0].timestamp, Micros(1_000_000));
        assert_eq!(t.packets()[1].timestamp, Micros(5_000_000));
    }
}
