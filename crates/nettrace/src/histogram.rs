//! Integer-domain histograms.
//!
//! Every characterization in the paper is a binned distribution: the
//! packet-size target uses three bins (`<41`, `41–180`, `>180` bytes,
//! §7.1.1), the interarrival target uses five (§7.1.2), the T1 backbone
//! kept a 50-byte-granularity packet-length histogram and a 20 pps
//! arrival-rate histogram (Table 1). [`BinSpec`] expresses all of these;
//! [`Histogram`] accumulates counts over them.

/// A specification of how an integer domain `0..=u64::MAX` is partitioned
/// into consecutive bins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinSpec {
    /// Bins of equal `width`: `[0,w) [w,2w) …`, with a final open bin
    /// starting at `cap` collecting everything `>= cap`.
    FixedWidth {
        /// Width of each regular bin; must be positive.
        width: u64,
        /// Lower edge of the final open (overflow) bin; values `>= cap`
        /// land there. Must be a multiple of `width`.
        cap: u64,
    },
    /// Explicit ascending upper edges. `edges = [e1, e2, …, ek]` produces
    /// `k + 1` bins: `[0,e1) [e1,e2) … [ek, ∞)`.
    Edges(Vec<u64>),
}

impl BinSpec {
    /// The paper's packet-size bins (§7.1.1): `<41`, `41–180`, `>180` bytes.
    /// (ACKs/character echoes; transaction-oriented; bulk transfer.)
    #[must_use]
    pub fn paper_packet_size() -> BinSpec {
        BinSpec::Edges(vec![41, 181])
    }

    /// The paper's interarrival-time bins (§7.1.2), microseconds:
    /// `<800`, `800–1199`, `1200–2399`, `2400–3599`, `>=3600`.
    #[must_use]
    pub fn paper_interarrival() -> BinSpec {
        BinSpec::Edges(vec![800, 1200, 2400, 3600])
    }

    /// The T1 backbone's 50-byte packet-length histogram (Table 1),
    /// capped at the 1500-byte FDDI→T3 MTU.
    #[must_use]
    pub fn t1_packet_length() -> BinSpec {
        BinSpec::FixedWidth {
            width: 50,
            cap: 1500,
        }
    }

    /// The T1 backbone's per-second arrival-rate histogram at 20 pps
    /// granularity (Table 1), capped at 2000 pps.
    #[must_use]
    pub fn t1_arrival_rate() -> BinSpec {
        BinSpec::FixedWidth {
            width: 20,
            cap: 2000,
        }
    }

    /// Number of bins this spec produces.
    ///
    /// # Panics
    /// Panics if the spec is malformed (zero width, `cap` not a multiple of
    /// `width`, or non-ascending edges). Malformed specs are programming
    /// errors, not data errors.
    #[must_use]
    pub fn bin_count(&self) -> usize {
        match self {
            BinSpec::FixedWidth { width, cap } => {
                assert!(*width > 0, "bin width must be positive");
                assert!(
                    cap % width == 0,
                    "cap {cap} must be a multiple of width {width}"
                );
                (cap / width) as usize + 1
            }
            BinSpec::Edges(edges) => {
                assert!(
                    edges.windows(2).all(|w| w[0] < w[1]),
                    "bin edges must be strictly ascending"
                );
                edges.len() + 1
            }
        }
    }

    /// The bin index a value falls into.
    #[must_use]
    pub fn bin_index(&self, value: u64) -> usize {
        match self {
            BinSpec::FixedWidth { width, cap } => {
                if value >= *cap {
                    (cap / width) as usize
                } else {
                    (value / width) as usize
                }
            }
            BinSpec::Edges(edges) => edges.partition_point(|&e| e <= value),
        }
    }

    /// Human-readable label for a bin, e.g. `"[41,181)"` or `">=3600"`.
    #[must_use]
    pub fn bin_label(&self, index: usize) -> String {
        let n = self.bin_count();
        assert!(index < n, "bin index {index} out of range (bins: {n})");
        match self {
            BinSpec::FixedWidth { width, cap } => {
                if index == n - 1 {
                    format!(">={cap}")
                } else {
                    let lo = index as u64 * width;
                    format!("[{},{})", lo, lo + width)
                }
            }
            BinSpec::Edges(edges) => {
                if index == 0 {
                    format!("<{}", edges[0])
                } else if index == n - 1 {
                    format!(">={}", edges[n - 2])
                } else {
                    format!("[{},{})", edges[index - 1], edges[index])
                }
            }
        }
    }
}

/// Counts accumulated over a [`BinSpec`].
///
/// ```
/// use nettrace::{BinSpec, Histogram};
/// let h = Histogram::from_values(BinSpec::paper_packet_size(), [40, 40, 100, 552]);
/// assert_eq!(h.counts(), &[2, 1, 1]); // <41, 41-180, >180
/// assert_eq!(h.total(), 4);
/// assert_eq!(h.proportions()[0], 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    spec: BinSpec,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// An empty histogram over the given bins.
    #[must_use]
    pub fn new(spec: BinSpec) -> Self {
        let counts = vec![0; spec.bin_count()];
        Histogram {
            spec,
            counts,
            total: 0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: u64) {
        let i = self.spec.bin_index(value);
        self.counts[i] += 1;
        self.total += 1;
    }

    /// Record a weighted observation (e.g. byte-weighted objects).
    pub fn observe_weighted(&mut self, value: u64, weight: u64) {
        let i = self.spec.bin_index(value);
        self.counts[i] += weight;
        self.total += weight;
    }

    /// Build a histogram from an iterator of values.
    #[must_use]
    pub fn from_values<I: IntoIterator<Item = u64>>(spec: BinSpec, values: I) -> Self {
        let mut h = Histogram::new(spec);
        for v in values {
            h.observe(v);
        }
        h
    }

    /// Adopt per-bin counts accumulated externally (the columnar hot
    /// path bins into a flat `Vec<u64>` indexed by
    /// [`BinSpec::bin_index`] and wraps it at the end). The total is
    /// the column sum, exactly as repeated `observe_weighted` calls
    /// would leave it.
    ///
    /// # Panics
    /// Panics if `counts.len()` differs from the spec's bin count.
    #[must_use]
    pub fn from_bin_counts(spec: BinSpec, counts: Vec<u64>) -> Self {
        assert_eq!(
            counts.len(),
            spec.bin_count(),
            "count column length must match the bin count"
        );
        let total = counts.iter().sum();
        Histogram {
            spec,
            counts,
            total,
        }
    }

    /// The bin specification.
    #[must_use]
    pub fn spec(&self) -> &BinSpec {
        &self.spec
    }

    /// Per-bin counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations (sum of counts).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-bin proportions; all zeros if the histogram is empty.
    #[must_use]
    pub fn proportions(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Merge another histogram over the *same* spec into this one.
    ///
    /// # Panics
    /// Panics if the specs differ: merging incompatible binnings is a
    /// programming error.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.spec, other.spec, "cannot merge differing bin specs");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Reset all counts to zero (the 15-minute NSFNET collection cycle
    /// reports and then resets its object counters; paper §2).
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_packet_size_bins() {
        let s = BinSpec::paper_packet_size();
        assert_eq!(s.bin_count(), 3);
        assert_eq!(s.bin_index(28), 0);
        assert_eq!(s.bin_index(40), 0);
        assert_eq!(s.bin_index(41), 1);
        assert_eq!(s.bin_index(180), 1);
        assert_eq!(s.bin_index(181), 2);
        assert_eq!(s.bin_index(1500), 2);
        assert_eq!(s.bin_label(0), "<41");
        assert_eq!(s.bin_label(1), "[41,181)");
        assert_eq!(s.bin_label(2), ">=181");
    }

    #[test]
    fn paper_interarrival_bins() {
        let s = BinSpec::paper_interarrival();
        assert_eq!(s.bin_count(), 5);
        assert_eq!(s.bin_index(0), 0);
        assert_eq!(s.bin_index(799), 0);
        assert_eq!(s.bin_index(800), 1);
        assert_eq!(s.bin_index(1199), 1);
        assert_eq!(s.bin_index(1200), 2);
        assert_eq!(s.bin_index(2399), 2);
        assert_eq!(s.bin_index(2400), 3);
        assert_eq!(s.bin_index(3599), 3);
        assert_eq!(s.bin_index(3600), 4);
        assert_eq!(s.bin_index(49600), 4);
    }

    #[test]
    fn fixed_width_bins() {
        let s = BinSpec::t1_packet_length();
        assert_eq!(s.bin_count(), 31); // 30 regular 50-byte bins + overflow
        assert_eq!(s.bin_index(0), 0);
        assert_eq!(s.bin_index(49), 0);
        assert_eq!(s.bin_index(50), 1);
        assert_eq!(s.bin_index(1499), 29);
        assert_eq!(s.bin_index(1500), 30);
        assert_eq!(s.bin_index(9000), 30);
        assert_eq!(s.bin_label(0), "[0,50)");
        assert_eq!(s.bin_label(30), ">=1500");
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn bad_edges_panic() {
        let _ = BinSpec::Edges(vec![10, 10]).bin_count();
    }

    #[test]
    #[should_panic(expected = "multiple of width")]
    fn bad_cap_panics() {
        let _ = BinSpec::FixedWidth { width: 7, cap: 20 }.bin_count();
    }

    #[test]
    fn histogram_observe_and_proportions() {
        let mut h = Histogram::new(BinSpec::paper_packet_size());
        for v in [40, 40, 100, 552] {
            h.observe(v);
        }
        assert_eq!(h.counts(), &[2, 1, 1]);
        assert_eq!(h.total(), 4);
        let p = h.proportions();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_proportions_are_zero() {
        let h = Histogram::new(BinSpec::paper_interarrival());
        assert_eq!(h.total(), 0);
        assert!(h.proportions().iter().all(|&p| p == 0.0));
    }

    #[test]
    fn weighted_observations() {
        let mut h = Histogram::new(BinSpec::paper_packet_size());
        h.observe_weighted(552, 552);
        h.observe_weighted(40, 40);
        assert_eq!(h.total(), 592);
        assert_eq!(h.counts(), &[40, 0, 552]);
    }

    #[test]
    fn merge_and_reset() {
        let mut a = Histogram::from_values(BinSpec::paper_packet_size(), [40, 552]);
        let b = Histogram::from_values(BinSpec::paper_packet_size(), [100, 100]);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 2, 1]);
        assert_eq!(a.total(), 4);
        a.reset();
        assert_eq!(a.total(), 0);
        assert_eq!(a.counts(), &[0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "differing bin specs")]
    fn merge_incompatible_panics() {
        let mut a = Histogram::new(BinSpec::paper_packet_size());
        let b = Histogram::new(BinSpec::paper_interarrival());
        a.merge(&b);
    }

    #[test]
    fn from_bin_counts_matches_observes() {
        let mut by_observe = Histogram::new(BinSpec::paper_packet_size());
        by_observe.observe_weighted(40, 3);
        by_observe.observe_weighted(100, 2);
        by_observe.observe_weighted(552, 7);
        let by_counts = Histogram::from_bin_counts(BinSpec::paper_packet_size(), vec![3, 2, 7]);
        assert_eq!(by_observe, by_counts);
        assert_eq!(by_counts.total(), 12);
    }

    #[test]
    #[should_panic(expected = "must match the bin count")]
    fn from_bin_counts_rejects_wrong_length() {
        let _ = Histogram::from_bin_counts(BinSpec::paper_packet_size(), vec![1, 2]);
    }

    #[test]
    fn from_values_matches_manual() {
        let vals = [0u64, 799, 800, 3600, 50_000];
        let h = Histogram::from_values(BinSpec::paper_interarrival(), vals);
        assert_eq!(h.counts(), &[2, 1, 0, 0, 2]);
    }
}
