//! Error types for trace construction and I/O.

use std::fmt;
use std::io;

/// Errors produced by trace construction, slicing, and pcap I/O.
#[derive(Debug)]
pub enum TraceError {
    /// Packet timestamps must be nondecreasing; the offending index and the
    /// two timestamps (previous, current) in microseconds are reported.
    OutOfOrder {
        /// Index of the packet whose timestamp went backwards.
        index: usize,
        /// Timestamp of the preceding packet (µs).
        prev_us: u64,
        /// Timestamp of the offending packet (µs).
        this_us: u64,
    },
    /// The requested time window or index range is empty or inverted.
    EmptyWindow,
    /// An I/O error during pcap read/write.
    Io(io::Error),
    /// The pcap stream's magic number is not a known libpcap magic.
    BadMagic(u32),
    /// The pcap stream ended in the middle of a record.
    TruncatedRecord {
        /// Number of complete packets read before truncation.
        packets_read: usize,
    },
    /// A pcap record header declared an implausible capture length.
    OversizedRecord {
        /// Declared capture length in bytes.
        caplen: u32,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::OutOfOrder {
                index,
                prev_us,
                this_us,
            } => write!(
                f,
                "packet {index} has timestamp {this_us}us earlier than predecessor {prev_us}us"
            ),
            TraceError::EmptyWindow => write!(f, "requested window selects no packets"),
            TraceError::Io(e) => write!(f, "I/O error: {e}"),
            TraceError::BadMagic(m) => write!(f, "not a pcap stream (magic {m:#010x})"),
            TraceError::TruncatedRecord { packets_read } => {
                write!(f, "pcap stream truncated after {packets_read} packets")
            }
            TraceError::OversizedRecord { caplen } => {
                write!(
                    f,
                    "pcap record declares caplen {caplen} > 256 KiB; refusing"
                )
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TraceError::OutOfOrder {
            index: 7,
            prev_us: 100,
            this_us: 50,
        };
        assert!(e.to_string().contains("packet 7"));
        assert!(TraceError::EmptyWindow.to_string().contains("no packets"));
        assert!(TraceError::BadMagic(0xdead_beef)
            .to_string()
            .contains("0xdeadbeef"));
        assert!(TraceError::TruncatedRecord { packets_read: 3 }
            .to_string()
            .contains("3 packets"));
    }

    #[test]
    fn io_error_source_is_preserved() {
        let e: TraceError = io::Error::new(io::ErrorKind::UnexpectedEof, "eof").into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
