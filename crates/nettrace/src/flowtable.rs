//! Bounded-memory flow aggregation.
//!
//! A [`FlowTable`] groups packets into flows — by synthetic flow id
//! when one is present, by 5-tuple otherwise — and accumulates per-flow
//! packet/byte counts, SYN observation, and first/last timestamps. It
//! is the aggregation substrate of the flow-statistics inversion suite:
//! run it over the *sampled* packet stream and the resulting sampled
//! flow sizes feed `statkit::inversion`; run it over the full trace and
//! the sizes are the ground truth the estimators are scored against.
//!
//! Two properties matter and are pinned by tests:
//!
//! * **Determinism** — storage is a hash map under a fixed (never
//!   randomized) in-tree hasher, every ordered read ([`FlowTable::flows`],
//!   [`FlowTable::sizes`]) sorts by key before returning, and batch
//!   construction is defined as the left fold of [`FlowTable::offer`],
//!   so batch and streaming aggregation are bit-identical.
//! * **Bounded memory** — a capacity-limited table evicts the least
//!   -recently-updated flow (smallest key on ties) when a new flow
//!   would exceed the cap, counting what it dropped; surviving flows
//!   are never corrupted by an eviction.
//!
//! The hot path is `O(1)` per packet: an unbounded table is one hash
//! probe per offer (no eviction index at all), which is what lets the
//! streaming windower aggregate flows per bucket at line rate and
//! enforce its budget once per window via
//! [`FlowTable::truncate_lru`].

use crate::histogram::{BinSpec, Histogram};
use crate::packet::{PacketRecord, Protocol};
use crate::time::Micros;
use std::collections::hash_map::Entry;
use std::collections::{BTreeSet, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

/// Deterministic multiply-xor hasher (FxHash-style) for flow keys.
///
/// `std`'s default hasher is seeded per process; flow aggregation must
/// hash identically on every run, so the table pins this fixed-key
/// folding instead. Not DoS-hardened — flow keys come from decoded
/// captures we already bound elsewhere, not from an open network
/// socket.
#[derive(Debug, Default)]
pub struct FlowHasher {
    state: u64,
}

impl FlowHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        const K: u64 = 0x517c_c1b7_2722_0a95;
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FlowHasher {
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.fold(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, word: u64) {
        self.fold(word);
    }

    fn finish(&self) -> u64 {
        self.state
    }
}

type FlowMap = HashMap<FlowKey, FlowRecord, BuildHasherDefault<FlowHasher>>;

/// Flow identity: synthetic id when assigned, 5-tuple otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FlowKey {
    /// Synthetic flow id (nonzero), as set by the flow generators.
    Id(u32),
    /// Classic 5-tuple for packets without a synthetic id.
    Tuple {
        /// IP protocol number.
        protocol: u8,
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
        /// Source network number.
        src_net: u16,
        /// Destination network number.
        dst_net: u16,
    },
}

impl FlowKey {
    /// The key a packet aggregates under.
    #[must_use]
    pub fn of(p: &PacketRecord) -> FlowKey {
        if p.flow_id != 0 {
            FlowKey::Id(p.flow_id)
        } else {
            FlowKey::Tuple {
                protocol: p.protocol.number(),
                src_port: p.src_port,
                dst_port: p.dst_port,
                src_net: p.src_net,
                dst_net: p.dst_net,
            }
        }
    }
}

impl std::hash::Hash for FlowKey {
    /// Pack the whole identity into two words (variant tag in the low
    /// bit) so hashing is two folds, not one per field.
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        match *self {
            FlowKey::Id(id) => {
                state.write_u64(u64::from(id) << 1);
                state.write_u64(0);
            }
            FlowKey::Tuple {
                protocol,
                src_port,
                dst_port,
                src_net,
                dst_net,
            } => {
                state.write_u64(
                    (u64::from(protocol) << 33)
                        | (u64::from(src_port) << 17)
                        | (u64::from(dst_port) << 1)
                        | 1,
                );
                state.write_u64((u64::from(src_net) << 16) | u64::from(dst_net));
            }
        }
    }
}

impl std::fmt::Display for FlowKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowKey::Id(id) => write!(f, "flow#{id}"),
            FlowKey::Tuple {
                protocol,
                src_port,
                dst_port,
                src_net,
                dst_net,
            } => write!(
                f,
                "{}:{src_net}.{src_port}>{dst_net}.{dst_port}",
                Protocol::from_number(*protocol)
            ),
        }
    }
}

/// Accumulated state of one flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowRecord {
    /// Packets observed.
    pub packets: u64,
    /// Bytes observed (sum of packet sizes).
    pub bytes: u64,
    /// Whether a SYN-flagged packet was observed.
    pub syn_seen: bool,
    /// Timestamp of the first observed packet.
    pub first_ts: Micros,
    /// Timestamp of the most recent observed packet.
    pub last_ts: Micros,
}

/// Bounded, deterministic flow aggregator. See the module docs.
#[derive(Debug, Clone)]
pub struct FlowTable {
    map: FlowMap,
    /// Eviction index mirroring `map`: one `(last_ts, key)` entry per
    /// live flow, so the LRU victim is `O(log n)` to find instead of a
    /// full scan — at capacity every new flow evicts, and a linear
    /// scan there turns streaming aggregation quadratic. Unbounded
    /// tables never evict, so they skip the index entirely.
    order: BTreeSet<(Micros, FlowKey)>,
    cap: usize,
    evicted_flows: u64,
    evicted_packets: u64,
    offered: u64,
}

impl FlowTable {
    /// A table evicting past `cap` live flows.
    ///
    /// # Panics
    /// Panics when `cap == 0` — a table that can hold nothing cannot
    /// aggregate anything.
    #[must_use]
    pub fn with_capacity(cap: usize) -> FlowTable {
        assert!(cap > 0, "flow table capacity must be positive");
        FlowTable {
            map: FlowMap::default(),
            order: BTreeSet::new(),
            cap,
            evicted_flows: 0,
            evicted_packets: 0,
            offered: 0,
        }
    }

    /// An effectively unbounded table (capacity `usize::MAX`).
    #[must_use]
    pub fn unbounded() -> FlowTable {
        FlowTable::with_capacity(usize::MAX)
    }

    /// Pre-size the storage for about `flows` live flows, so a burst of
    /// distinct flows does not pay a chain of rehashes. A hint, not a
    /// bound: the table still grows past it.
    pub fn reserve(&mut self, flows: usize) {
        self.map.reserve(flows.saturating_sub(self.map.len()));
    }

    /// Aggregate every packet of a slice: exactly the left fold of
    /// [`FlowTable::offer`], so it is bit-identical to streaming the
    /// same packets one at a time.
    #[must_use]
    pub fn from_packets(cap: usize, packets: &[PacketRecord]) -> FlowTable {
        let mut t = FlowTable::with_capacity(cap);
        for p in packets {
            t.offer(p);
        }
        t
    }

    /// Offer one packet. A packet for a new flow when the table is at
    /// capacity first evicts the least-recently-updated flow (smallest
    /// key on ties).
    pub fn offer(&mut self, p: &PacketRecord) {
        self.offered += 1;
        let key = FlowKey::of(p);
        // Length check first: below capacity (and always when
        // unbounded) the offer is a single hash probe.
        if self.map.len() >= self.cap && !self.map.contains_key(&key) {
            self.evict_one();
        }
        match self.map.entry(key) {
            Entry::Occupied(mut e) => {
                let rec = e.get_mut();
                rec.packets += 1;
                rec.bytes += u64::from(p.size);
                rec.syn_seen |= p.syn();
                if p.timestamp < rec.first_ts {
                    rec.first_ts = p.timestamp;
                }
                if p.timestamp > rec.last_ts {
                    if self.cap != usize::MAX {
                        self.order.remove(&(rec.last_ts, key));
                        self.order.insert((p.timestamp, key));
                    }
                    rec.last_ts = p.timestamp;
                }
            }
            Entry::Vacant(e) => {
                e.insert(FlowRecord {
                    packets: 1,
                    bytes: u64::from(p.size),
                    syn_seen: p.syn(),
                    first_ts: p.timestamp,
                    last_ts: p.timestamp,
                });
                if self.cap != usize::MAX {
                    self.order.insert((p.timestamp, key));
                }
            }
        }
    }

    /// Evict the least-recently-updated flow; ties broken by smallest
    /// key, so eviction is fully deterministic.
    fn evict_one(&mut self) {
        if let Some((_, key)) = self.order.pop_first() {
            if let Some(rec) = self.map.remove(&key) {
                self.evicted_flows += 1;
                self.evicted_packets += rec.packets;
            }
        }
    }

    /// Merge another table's flows into this one (first/last timestamps
    /// widen, counters add, SYN ors). The merged table keeps *this*
    /// table's capacity and may evict to respect it.
    ///
    /// A bounded merge processes `other`'s flows in key order so the
    /// interleaving of insertions and evictions — and therefore the
    /// surviving set — is deterministic. An unbounded merge never
    /// evicts, so every per-flow update commutes and the flows are
    /// folded in storage order directly.
    pub fn merge(&mut self, other: &FlowTable) {
        if self.cap == usize::MAX {
            for (key, rec) in &other.map {
                self.merge_record(*key, rec);
            }
        } else {
            let mut keys: Vec<&FlowKey> = other.map.keys().collect();
            keys.sort_unstable();
            for key in keys {
                if self.map.len() >= self.cap && !self.map.contains_key(key) {
                    self.evict_one();
                }
                self.merge_record(*key, &other.map[key]);
            }
        }
        self.evicted_flows += other.evicted_flows;
        self.evicted_packets += other.evicted_packets;
        self.offered += other.offered;
    }

    /// Fold one flow's accumulated state into this table (no eviction).
    fn merge_record(&mut self, key: FlowKey, rec: &FlowRecord) {
        match self.map.entry(key) {
            Entry::Occupied(mut e) => {
                let r = e.get_mut();
                r.packets += rec.packets;
                r.bytes += rec.bytes;
                r.syn_seen |= rec.syn_seen;
                r.first_ts = r.first_ts.min(rec.first_ts);
                if rec.last_ts > r.last_ts {
                    if self.cap != usize::MAX {
                        self.order.remove(&(r.last_ts, key));
                        self.order.insert((rec.last_ts, key));
                    }
                    r.last_ts = rec.last_ts;
                }
            }
            Entry::Vacant(e) => {
                e.insert(*rec);
                if self.cap != usize::MAX {
                    self.order.insert((rec.last_ts, key));
                }
            }
        }
    }

    /// Enforce a capacity bound in one shot: keep the `cap`
    /// most-recently-updated flows (largest key on ties) and evict the
    /// rest, counting them exactly like incremental eviction. The
    /// table's capacity becomes `cap`, so later offers keep the bound.
    ///
    /// This is the windower's merge-time budget: buckets aggregate
    /// unbounded (one hash probe per packet), and the survivor set is
    /// chosen once per window — `O(flows)` to select — instead of
    /// maintaining an eviction index on every packet.
    ///
    /// # Panics
    /// Panics when `cap == 0`.
    pub fn truncate_lru(&mut self, cap: usize) {
        assert!(cap > 0, "flow table capacity must be positive");
        self.cap = cap;
        if self.map.len() > cap {
            let mut ranks: Vec<(Micros, FlowKey)> =
                self.map.iter().map(|(k, r)| (r.last_ts, *k)).collect();
            // Partition around the cap'th most-recent entry: everything
            // below the pivot is evicted. O(flows), no full sort.
            let cut = ranks.len() - cap;
            ranks.select_nth_unstable(cut - 1);
            for &(_, key) in &ranks[..cut] {
                if let Some(rec) = self.map.remove(&key) {
                    self.evicted_flows += 1;
                    self.evicted_packets += rec.packets;
                }
            }
        }
        if self.cap != usize::MAX {
            self.order = self.map.iter().map(|(k, r)| (r.last_ts, *k)).collect();
        }
    }

    /// Live flows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no flows are live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Packets offered (including any later evicted).
    #[must_use]
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Flows evicted by the capacity bound.
    #[must_use]
    pub fn evicted_flows(&self) -> u64 {
        self.evicted_flows
    }

    /// Packets inside evicted flows at their eviction instants.
    #[must_use]
    pub fn evicted_packets(&self) -> u64 {
        self.evicted_packets
    }

    /// Iterate live flows in key order.
    pub fn flows(&self) -> impl Iterator<Item = (&FlowKey, &FlowRecord)> {
        let mut v: Vec<(&FlowKey, &FlowRecord)> = self.map.iter().collect();
        v.sort_unstable_by_key(|&(k, _)| *k);
        v.into_iter()
    }

    /// Live flow sizes (packets per flow) in key order.
    #[must_use]
    pub fn sizes(&self) -> Vec<u64> {
        self.flows().map(|(_, r)| r.packets).collect()
    }

    /// Live flows that saw a SYN.
    #[must_use]
    pub fn syn_flows(&self) -> u64 {
        self.map.values().filter(|r| r.syn_seen).count() as u64
    }

    /// Packets held by live flows.
    #[must_use]
    pub fn live_packets(&self) -> u64 {
        self.map.values().map(|r| r.packets).sum()
    }

    /// Histogram of live flow sizes under `spec`.
    #[must_use]
    pub fn size_histogram(&self, spec: &BinSpec) -> Histogram {
        Histogram::from_values(spec.clone(), self.map.values().map(|r| r.packets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(t: u64, flow: u32, first: bool) -> PacketRecord {
        PacketRecord::new(Micros(t), 100).with_flow(flow, first)
    }

    #[test]
    fn groups_by_flow_id_and_tuple() {
        let mut t = FlowTable::unbounded();
        t.offer(&pkt(0, 1, true));
        t.offer(&pkt(10, 1, false));
        t.offer(&pkt(20, 2, true));
        // No flow id: keyed by 5-tuple.
        t.offer(&PacketRecord::new(Micros(30), 40).with_ports(53, 53));
        t.offer(&PacketRecord::new(Micros(40), 40).with_ports(53, 53));
        t.offer(&PacketRecord::new(Micros(50), 40).with_ports(80, 80));
        assert_eq!(t.len(), 4);
        assert_eq!(t.sizes(), vec![2, 1, 2, 1]);
        assert_eq!(t.syn_flows(), 2);
        assert_eq!(t.offered(), 6);
        assert_eq!(t.live_packets(), 6);
        let rec = t.flows().next().unwrap().1;
        assert_eq!(rec.packets, 2);
        assert_eq!(rec.bytes, 200);
        assert!(rec.syn_seen);
        assert_eq!(rec.first_ts, Micros(0));
        assert_eq!(rec.last_ts, Micros(10));
    }

    #[test]
    fn eviction_is_lru_with_key_tiebreak_and_counts() {
        let mut t = FlowTable::with_capacity(2);
        t.offer(&pkt(0, 1, true));
        t.offer(&pkt(5, 2, true));
        t.offer(&pkt(5, 2, false));
        // Flow 3 arrives at capacity: flow 1 (oldest last_ts) goes.
        t.offer(&pkt(10, 3, true));
        assert_eq!(t.len(), 2);
        assert_eq!(t.evicted_flows(), 1);
        assert_eq!(t.evicted_packets(), 1);
        let keys: Vec<FlowKey> = t.flows().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![FlowKey::Id(2), FlowKey::Id(3)]);
        // Survivors keep exact counts (no corruption by eviction).
        assert_eq!(t.sizes(), vec![2, 1]);
        // Equal last_ts: the smallest key is the victim.
        let mut t = FlowTable::with_capacity(2);
        t.offer(&pkt(7, 5, true));
        t.offer(&pkt(7, 4, true));
        t.offer(&pkt(9, 6, true));
        let keys: Vec<FlowKey> = t.flows().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![FlowKey::Id(5), FlowKey::Id(6)]);
    }

    #[test]
    fn batch_is_fold_of_offer() {
        let pkts: Vec<PacketRecord> = (0..100)
            .map(|i| pkt(i, (i % 7) as u32 + 1, i < 7))
            .collect();
        let batch = FlowTable::from_packets(3, &pkts);
        let mut streamed = FlowTable::with_capacity(3);
        for p in &pkts {
            streamed.offer(p);
        }
        assert_eq!(batch.sizes(), streamed.sizes());
        assert_eq!(batch.evicted_flows(), streamed.evicted_flows());
        assert_eq!(batch.offered(), streamed.offered());
    }

    #[test]
    fn merge_combines_flows() {
        let mut a = FlowTable::unbounded();
        a.offer(&pkt(0, 1, true));
        a.offer(&pkt(10, 2, true));
        let mut b = FlowTable::unbounded();
        b.offer(&pkt(20, 1, false));
        b.offer(&pkt(30, 3, true));
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.sizes(), vec![2, 1, 1]);
        assert_eq!(a.offered(), 4);
        let rec = a.flows().next().unwrap().1;
        assert_eq!((rec.first_ts, rec.last_ts), (Micros(0), Micros(20)));
        assert!(rec.syn_seen);
    }

    #[test]
    fn size_histogram_counts_flows_not_packets() {
        let mut t = FlowTable::unbounded();
        for i in 0..10 {
            t.offer(&pkt(i, 1, i == 0));
        }
        t.offer(&pkt(100, 2, true));
        let h = t.size_histogram(&BinSpec::FixedWidth { width: 4, cap: 16 });
        assert_eq!(h.total(), 2); // two flows
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = FlowTable::with_capacity(0);
    }
}
