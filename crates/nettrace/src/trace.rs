//! The [`Trace`] container: an ordered parent population of packets.
//!
//! The paper treats its one-hour trace as the *true parent population*
//! (§4); all sampling simulations run over it and all disparity metrics
//! compare back to it. `Trace` therefore guarantees nondecreasing
//! timestamps at construction time and offers the two slicing operations
//! the experiments need: by time window (§7.3 interval experiments) and by
//! packet index.

use crate::error::TraceError;
use crate::packet::PacketRecord;
use crate::time::{ClockModel, Micros};

/// An ordered sequence of packet records with nondecreasing timestamps.
///
/// ```
/// use nettrace::{Micros, PacketRecord, Trace};
/// let trace = Trace::new(vec![
///     PacketRecord::new(Micros(0), 40),
///     PacketRecord::new(Micros(2_400), 552),
///     PacketRecord::new(Micros(4_000), 40),
/// ]).unwrap();
/// assert_eq!(trace.len(), 3);
/// assert_eq!(trace.total_bytes(), 632);
/// assert_eq!(trace.interarrivals(), vec![2_400, 1_600]);
/// // Half-open time windows select packets by timestamp.
/// assert_eq!(trace.window(Micros(0), Micros(2_400)).len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    packets: Vec<PacketRecord>,
}

impl Trace {
    /// Build a trace from packets, verifying timestamp order.
    ///
    /// # Errors
    /// Returns [`TraceError::OutOfOrder`] naming the first offending index
    /// if timestamps ever decrease.
    pub fn new(packets: Vec<PacketRecord>) -> Result<Self, TraceError> {
        for i in 1..packets.len() {
            if packets[i].timestamp < packets[i - 1].timestamp {
                return Err(TraceError::OutOfOrder {
                    index: i,
                    prev_us: packets[i - 1].timestamp.as_u64(),
                    this_us: packets[i].timestamp.as_u64(),
                });
            }
        }
        Ok(Trace { packets })
    }

    /// Build a trace from packets that are known to be sorted, sorting
    /// defensively if they are not (stable by timestamp).
    #[must_use]
    pub fn from_unordered(mut packets: Vec<PacketRecord>) -> Self {
        packets.sort_by_key(|p| p.timestamp);
        Trace { packets }
    }

    /// An empty trace.
    #[must_use]
    pub fn empty() -> Self {
        Trace::default()
    }

    /// Number of packets (the population size `N`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Whether the trace holds no packets.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// The packet records.
    #[must_use]
    pub fn packets(&self) -> &[PacketRecord] {
        &self.packets
    }

    /// Iterate over packet records.
    pub fn iter(&self) -> std::slice::Iter<'_, PacketRecord> {
        self.packets.iter()
    }

    /// Timestamp of the first packet, if any.
    #[must_use]
    pub fn start(&self) -> Option<Micros> {
        self.packets.first().map(|p| p.timestamp)
    }

    /// Timestamp of the last packet, if any.
    #[must_use]
    pub fn end(&self) -> Option<Micros> {
        self.packets.last().map(|p| p.timestamp)
    }

    /// Trace duration (last minus first timestamp); zero for traces with
    /// fewer than two packets.
    #[must_use]
    pub fn duration(&self) -> Micros {
        match (self.start(), self.end()) {
            (Some(s), Some(e)) => e.saturating_sub(s),
            _ => Micros::ZERO,
        }
    }

    /// Total bytes across all packets.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.packets.iter().map(|p| u64::from(p.size)).sum()
    }

    /// A view of the packets whose timestamps fall in `[from, to)`.
    ///
    /// This is the *interval* operation of the paper's §7.3: experiments
    /// sample over exponentially growing windows relative to the start of
    /// the hour. The returned slice borrows the trace (no copying).
    #[must_use]
    pub fn window(&self, from: Micros, to: Micros) -> &[PacketRecord] {
        if to <= from {
            return &[];
        }
        let lo = self.packets.partition_point(|p| p.timestamp < from);
        let hi = self.packets.partition_point(|p| p.timestamp < to);
        &self.packets[lo..hi]
    }

    /// A sub-trace for `[from, to)`, cloning the selected records.
    ///
    /// # Errors
    /// Returns [`TraceError::EmptyWindow`] if no packets fall in the window.
    pub fn window_trace(&self, from: Micros, to: Micros) -> Result<Trace, TraceError> {
        let w = self.window(from, to);
        if w.is_empty() {
            return Err(TraceError::EmptyWindow);
        }
        Ok(Trace {
            packets: w.to_vec(),
        })
    }

    /// Re-timestamp every packet through a capture-clock model
    /// (e.g. [`ClockModel::SDSC_1993`]'s 400 µs quantization).
    /// Quantization is monotone, so ordering is preserved.
    #[must_use]
    pub fn quantized(&self, clock: ClockModel) -> Trace {
        let packets = self
            .packets
            .iter()
            .map(|p| {
                let mut q = *p;
                q.timestamp = clock.quantize(p.timestamp);
                q
            })
            .collect();
        Trace { packets }
    }

    /// Interarrival times between consecutive packets, in microseconds.
    /// Length is `len() - 1` (empty for traces with < 2 packets).
    #[must_use]
    pub fn interarrivals(&self) -> Vec<u64> {
        self.packets
            .windows(2)
            .map(|w| w[1].timestamp.saturating_sub(w[0].timestamp).as_u64())
            .collect()
    }

    /// Packet sizes in bytes, in arrival order.
    #[must_use]
    pub fn sizes(&self) -> Vec<u16> {
        self.packets.iter().map(|p| p.size).collect()
    }

    /// Aggregate statistics over the trace.
    #[must_use]
    pub fn stats(&self) -> TraceStats {
        TraceStats {
            packets: self.len() as u64,
            bytes: self.total_bytes(),
            duration: self.duration(),
        }
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a PacketRecord;
    type IntoIter = std::slice::Iter<'a, PacketRecord>;
    fn into_iter(self) -> Self::IntoIter {
        self.packets.iter()
    }
}

/// Whole-trace aggregate counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Total packet count.
    pub packets: u64,
    /// Total bytes.
    pub bytes: u64,
    /// First-to-last-packet duration.
    pub duration: Micros,
}

impl TraceStats {
    /// Mean packet rate over the trace duration, packets/second.
    /// Zero when the duration is zero.
    #[must_use]
    pub fn mean_pps(&self) -> f64 {
        let d = self.duration.as_secs_f64();
        if d > 0.0 {
            self.packets as f64 / d
        } else {
            0.0
        }
    }

    /// Mean packet size in bytes. Zero for an empty trace.
    #[must_use]
    pub fn mean_size(&self) -> f64 {
        if self.packets > 0 {
            self.bytes as f64 / self.packets as f64
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(t: u64, size: u16) -> PacketRecord {
        PacketRecord::new(Micros(t), size)
    }

    fn sample_trace() -> Trace {
        Trace::new(vec![
            pkt(0, 40),
            pkt(400, 552),
            pkt(400, 40),
            pkt(1200, 1500),
            pkt(2_000_000, 76),
        ])
        .unwrap()
    }

    #[test]
    fn construction_checks_order() {
        let err = Trace::new(vec![pkt(100, 40), pkt(50, 40)]).unwrap_err();
        match err {
            TraceError::OutOfOrder {
                index,
                prev_us,
                this_us,
            } => {
                assert_eq!(index, 1);
                assert_eq!(prev_us, 100);
                assert_eq!(this_us, 50);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn equal_timestamps_are_allowed() {
        // The 400us clock makes ties common; they must be legal.
        assert!(Trace::new(vec![pkt(400, 40), pkt(400, 552)]).is_ok());
    }

    #[test]
    fn from_unordered_sorts_stably() {
        let t = Trace::from_unordered(vec![pkt(800, 1), pkt(0, 2), pkt(400, 3)]);
        let ts: Vec<u64> = t.iter().map(|p| p.timestamp.as_u64()).collect();
        assert_eq!(ts, vec![0, 400, 800]);
    }

    #[test]
    fn basic_accessors() {
        let t = sample_trace();
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
        assert_eq!(t.start(), Some(Micros(0)));
        assert_eq!(t.end(), Some(Micros(2_000_000)));
        assert_eq!(t.duration(), Micros(2_000_000));
        assert_eq!(t.total_bytes(), 40 + 552 + 40 + 1500 + 76);
    }

    #[test]
    fn empty_trace_edge_cases() {
        let t = Trace::empty();
        assert!(t.is_empty());
        assert_eq!(t.start(), None);
        assert_eq!(t.duration(), Micros::ZERO);
        assert!(t.interarrivals().is_empty());
        assert_eq!(t.stats().mean_pps(), 0.0);
        assert_eq!(t.stats().mean_size(), 0.0);
    }

    #[test]
    fn window_half_open_semantics() {
        let t = sample_trace();
        let w = t.window(Micros(400), Micros(1200));
        assert_eq!(w.len(), 2); // the two packets at t=400; 1200 excluded
        assert!(w.iter().all(|p| p.timestamp == Micros(400)));
        assert!(t.window(Micros(10), Micros(10)).is_empty());
        assert!(t.window(Micros(20), Micros(10)).is_empty());
        // full span
        assert_eq!(t.window(Micros(0), Micros(u64::MAX)).len(), 5);
    }

    #[test]
    fn window_trace_errors_on_empty() {
        let t = sample_trace();
        assert!(matches!(
            t.window_trace(Micros(3_000_000), Micros(4_000_000)),
            Err(TraceError::EmptyWindow)
        ));
        let sub = t.window_trace(Micros(0), Micros(500)).unwrap();
        assert_eq!(sub.len(), 3);
    }

    #[test]
    fn interarrivals_are_diffs() {
        let t = sample_trace();
        assert_eq!(t.interarrivals(), vec![400, 0, 800, 1_998_800]);
    }

    #[test]
    fn quantization_preserves_order_and_count() {
        let t = Trace::new(vec![pkt(0, 40), pkt(399, 40), pkt(401, 40), pkt(850, 40)]).unwrap();
        let q = t.quantized(ClockModel::SDSC_1993);
        assert_eq!(q.len(), 4);
        let ts: Vec<u64> = q.iter().map(|p| p.timestamp.as_u64()).collect();
        assert_eq!(ts, vec![0, 0, 400, 800]);
    }

    #[test]
    fn stats_rates() {
        let t = sample_trace();
        let s = t.stats();
        assert_eq!(s.packets, 5);
        assert!((s.mean_pps() - 2.5).abs() < 1e-9); // 5 packets over 2 s
        assert!((s.mean_size() - 2208.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn into_iterator_for_reference() {
        let t = sample_trace();
        let mut n = 0;
        for _p in &t {
            n += 1;
        }
        assert_eq!(n, t.len());
    }
}
