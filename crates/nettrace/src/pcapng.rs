//! pcapng (pcap-next-generation) reader.
//!
//! Modern capture tools default to pcapng; a workspace claiming "run the
//! paper's analysis on your own captures" has to read it. This is a
//! focused reader: Section Header Blocks (both byte orders), Interface
//! Description Blocks (per-interface timestamp resolution via
//! `if_tsresol`), Enhanced Packet Blocks, and Simple Packet Blocks;
//! every other block type is skipped by length. Writing stays classic
//! pcap ([`crate::pcap::write_pcap`]) — universally readable.

use crate::error::TraceError;
use crate::packet::PacketRecord;
#[cfg(test)]
use crate::packet::Protocol;
use crate::time::Micros;
use crate::trace::Trace;
use std::io::Read;

/// Section Header Block type.
pub(crate) const SHB_TYPE: u32 = 0x0A0D_0D0A;
/// Byte-order magic inside the SHB body.
pub(crate) const BOM: u32 = 0x1A2B_3C4D;
/// Interface Description Block.
pub(crate) const IDB_TYPE: u32 = 0x0000_0001;
/// Enhanced Packet Block.
pub(crate) const EPB_TYPE: u32 = 0x0000_0006;
/// Simple Packet Block.
pub(crate) const SPB_TYPE: u32 = 0x0000_0003;
/// Sanity cap on a single block's length.
pub(crate) const MAX_BLOCK: u32 = 16 * 1024 * 1024;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Endian {
    Little,
    Big,
}

fn u16_at(e: Endian, b: &[u8]) -> u16 {
    let arr = [b[0], b[1]];
    match e {
        Endian::Little => u16::from_le_bytes(arr),
        Endian::Big => u16::from_be_bytes(arr),
    }
}

pub(crate) fn u32_at(e: Endian, b: &[u8]) -> u32 {
    let arr = [b[0], b[1], b[2], b[3]];
    match e {
        Endian::Little => u32::from_le_bytes(arr),
        Endian::Big => u32::from_be_bytes(arr),
    }
}

/// Per-interface decoding state.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Interface {
    /// Ticks per second of this interface's timestamps.
    ticks_per_sec: u64,
}

impl Default for Interface {
    fn default() -> Self {
        // pcapng default resolution: microseconds.
        Interface {
            ticks_per_sec: 1_000_000,
        }
    }
}

/// Parse `if_tsresol` (option code 9): value `v` means 10^-v seconds,
/// or 2^-(v & 0x7f) if the MSB is set.
pub(crate) fn ticks_per_sec_from_tsresol(v: u8) -> u64 {
    if v & 0x80 != 0 {
        1u64 << (v & 0x7f).min(63)
    } else {
        10u64.pow(u32::from(v).min(19))
    }
}

/// Read a pcapng stream into a [`Trace`].
///
/// Timestamps are converted to absolute microseconds; packets are
/// defensively sorted (multi-interface captures interleave). The same
/// synthetic-IPv4 recovery as the classic reader applies
/// ([`crate::pcap`]): protocol, ports, and network numbers are parsed
/// from the packet bytes when they look like IPv4.
///
/// # Errors
/// * [`TraceError::BadMagic`] if the stream does not start with an SHB;
/// * [`TraceError::TruncatedRecord`] if it ends inside a block;
/// * [`TraceError::OversizedRecord`] on an implausible block length.
pub fn read_pcapng<R: Read>(r: R) -> Result<Trace, TraceError> {
    let _span = obskit::span("nettrace_pcapng_read");
    let result = read_pcapng_blocks(r);
    crate::observe_read("pcapng", &result);
    result
}

fn read_pcapng_blocks<R: Read>(mut r: R) -> Result<Trace, TraceError> {
    let mut packets: Vec<PacketRecord> = Vec::new();
    let mut endian = Endian::Little;
    let mut interfaces: Vec<Interface> = Vec::new();
    let mut first = true;

    loop {
        // Block header: type + total length (endianness of the current
        // section; the SHB is self-describing via its BOM).
        let mut hdr = [0u8; 8];
        match read_exact_or_eof(&mut r, &mut hdr) {
            ReadOutcome::Eof => {
                if first {
                    // A pcapng stream must open with an SHB; an empty
                    // stream is a truncated capture, not an empty trace.
                    return Err(TraceError::TruncatedRecord { packets_read: 0 });
                }
                break;
            }
            ReadOutcome::Partial => {
                return Err(TraceError::TruncatedRecord {
                    packets_read: packets.len(),
                })
            }
            ReadOutcome::Full => {}
        }
        let raw_type_le = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);

        if first && raw_type_le != SHB_TYPE {
            // SHB_TYPE is a palindrome, so this check is endian-neutral.
            return Err(TraceError::BadMagic(raw_type_le));
        }

        if raw_type_le == SHB_TYPE {
            // Need the BOM (first 4 body bytes) to fix endianness.
            let mut bom = [0u8; 4];
            if !matches!(read_exact_or_eof(&mut r, &mut bom), ReadOutcome::Full) {
                return Err(TraceError::TruncatedRecord {
                    packets_read: packets.len(),
                });
            }
            endian = if u32::from_le_bytes(bom) == BOM {
                Endian::Little
            } else if u32::from_be_bytes(bom) == BOM {
                Endian::Big
            } else {
                return Err(TraceError::BadMagic(u32::from_le_bytes(bom)));
            };
            let total_len = u32_at(endian, &hdr[4..8]);
            if !(28..=MAX_BLOCK).contains(&total_len) || !total_len.is_multiple_of(4) {
                return Err(TraceError::OversizedRecord { caplen: total_len });
            }
            // Consume the rest of the SHB (version, section length,
            // options, trailing length): total - 8 (header) - 4 (BOM).
            skip(&mut r, total_len as usize - 12, packets.len())?;
            // A new section resets the interface list.
            interfaces.clear();
            first = false;
            continue;
        }

        let block_type = u32_at(endian, &hdr[0..4]);
        let total_len = u32_at(endian, &hdr[4..8]);
        if !(12..=MAX_BLOCK).contains(&total_len) || !total_len.is_multiple_of(4) {
            return Err(TraceError::OversizedRecord { caplen: total_len });
        }
        let body_len = total_len as usize - 12; // minus header and trailer
        let mut body = vec![0u8; body_len];
        if !matches!(read_exact_or_eof(&mut r, &mut body), ReadOutcome::Full) {
            return Err(TraceError::TruncatedRecord {
                packets_read: packets.len(),
            });
        }
        // Trailing total-length copy.
        let mut trailer = [0u8; 4];
        if !matches!(read_exact_or_eof(&mut r, &mut trailer), ReadOutcome::Full) {
            return Err(TraceError::TruncatedRecord {
                packets_read: packets.len(),
            });
        }

        match block_type {
            IDB_TYPE => {
                if let Some(iface) = parse_idb(endian, &body) {
                    interfaces.push(iface);
                }
            }
            EPB_TYPE => {
                if let Some(p) = parse_epb(endian, &body, &interfaces) {
                    packets.push(p);
                }
            }
            SPB_TYPE => {
                // SPB has no timestamp: record at the previous packet's
                // time (or zero) to keep ordering sane.
                let ts = packets.last().map_or(Micros::ZERO, |p| p.timestamp);
                if let Some(p) = parse_spb(endian, &body, ts) {
                    packets.push(p);
                }
            }
            _ => { /* unknown block: already skipped via body read */ }
        }
    }
    Ok(Trace::from_unordered(packets))
}

/// Decode an Interface Description Block body (`None` if too short to
/// carry the fixed linktype/snaplen prefix).
pub(crate) fn parse_idb(endian: Endian, body: &[u8]) -> Option<Interface> {
    if body.len() < 8 {
        return None;
    }
    let mut iface = Interface::default();
    // Options start at offset 8 (linktype u16, reserved u16, snaplen u32).
    let mut o = 8usize;
    while o + 4 <= body.len() {
        let code = u16_at(endian, &body[o..]);
        let len = u16_at(endian, &body[o + 2..]) as usize;
        o += 4;
        if code == 0 {
            break; // opt_endofopt
        }
        if o + len > body.len() {
            break;
        }
        if code == 9 && len >= 1 {
            iface.ticks_per_sec = ticks_per_sec_from_tsresol(body[o]);
        }
        o += len.div_ceil(4) * 4; // options pad to 32 bits
    }
    Some(iface)
}

/// Decode an Enhanced Packet Block body into a record (`None` if too
/// short for the fixed header).
pub(crate) fn parse_epb(
    endian: Endian,
    body: &[u8],
    interfaces: &[Interface],
) -> Option<PacketRecord> {
    if body.len() < 20 {
        return None;
    }
    let iface_id = u32_at(endian, &body[0..]) as usize;
    let ts_high = u64::from(u32_at(endian, &body[4..]));
    let ts_low = u64::from(u32_at(endian, &body[8..]));
    let caplen = u32_at(endian, &body[12..]) as usize;
    let orig_len = u32_at(endian, &body[16..]);
    let ticks = (ts_high << 32) | ts_low;
    let tps = interfaces
        .get(iface_id)
        .copied()
        .unwrap_or_default()
        .ticks_per_sec;
    // Convert ticks to microseconds exactly (128-bit to avoid both
    // overflow and the truncation of non-decimal resolutions like 2^-10).
    let micros = (u128::from(ticks) * 1_000_000 / u128::from(tps.max(1))) as u64;
    let data_end = (20 + caplen).min(body.len());
    let data = &body[20..data_end];
    Some(parse_payload(data, orig_len, Micros(micros)))
}

/// Decode a Simple Packet Block body into a record at timestamp `ts`
/// (`None` if too short for the original-length field).
pub(crate) fn parse_spb(endian: Endian, body: &[u8], ts: Micros) -> Option<PacketRecord> {
    if body.len() < 4 {
        return None;
    }
    let orig_len = u32_at(endian, &body[0..]);
    Some(parse_payload(&body[4..], orig_len, ts))
}

/// Sniff the first bytes and dispatch to the classic pcap or pcapng
/// reader. Accepts anything either reader accepts.
///
/// # Errors
/// As the underlying readers; [`TraceError::BadMagic`] if the stream is
/// neither format.
pub fn read_capture<R: Read>(mut r: R) -> Result<Trace, TraceError> {
    let mut magic = [0u8; 4];
    // Streams shorter than the 4 sniff bytes are truncated captures, not
    // I/O failures: keep the error typed.
    if !matches!(read_exact_or_eof(&mut r, &mut magic), ReadOutcome::Full) {
        return Err(TraceError::TruncatedRecord { packets_read: 0 });
    }
    let le = u32::from_le_bytes(magic);
    if le == SHB_TYPE {
        return read_pcapng(Chain {
            head: magic.to_vec(),
            pos: 0,
            tail: r,
        });
    }
    crate::pcap::read_pcap_with_magic(magic, r)
}

/// A tiny prepend-reader so `read_capture` can push the sniffed bytes
/// back.
struct Chain<R> {
    head: Vec<u8>,
    pos: usize,
    tail: R,
}

impl<R: Read> Read for Chain<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos < self.head.len() {
            let n = (self.head.len() - self.pos).min(buf.len());
            buf[..n].copy_from_slice(&self.head[self.pos..self.pos + n]);
            self.pos += n;
            return Ok(n);
        }
        self.tail.read(buf)
    }
}

/// Reuse the classic reader's IPv4 recovery (one parser, no drift).
pub(crate) fn parse_payload(data: &[u8], orig_len: u32, ts: Micros) -> PacketRecord {
    crate::pcap::parse_ipv4(data, orig_len, ts)
}

enum ReadOutcome {
    Full,
    Partial,
    Eof,
}

fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> ReadOutcome {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Partial
                }
            }
            Ok(n) => filled += n,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return ReadOutcome::Partial,
        }
    }
    ReadOutcome::Full
}

fn skip<R: Read>(r: &mut R, mut n: usize, packets_read: usize) -> Result<(), TraceError> {
    let mut buf = [0u8; 4096];
    while n > 0 {
        let take = n.min(buf.len());
        if !matches!(read_exact_or_eof(r, &mut buf[..take]), ReadOutcome::Full) {
            return Err(TraceError::TruncatedRecord { packets_read });
        }
        n -= take;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a minimal little-endian pcapng stream.
    struct Builder {
        buf: Vec<u8>,
    }

    impl Builder {
        fn new() -> Self {
            let mut b = Builder { buf: Vec::new() };
            // SHB: type, len 28, BOM, version 1.0, section len -1.
            b.block(SHB_TYPE, &{
                let mut body = Vec::new();
                body.extend_from_slice(&BOM.to_le_bytes());
                body.extend_from_slice(&1u16.to_le_bytes());
                body.extend_from_slice(&0u16.to_le_bytes());
                body.extend_from_slice(&(-1i64).to_le_bytes());
                body
            });
            b
        }

        fn block(&mut self, btype: u32, body: &[u8]) {
            let total = 12 + body.len() as u32;
            self.buf.extend_from_slice(&btype.to_le_bytes());
            self.buf.extend_from_slice(&total.to_le_bytes());
            self.buf.extend_from_slice(body);
            self.buf.extend_from_slice(&total.to_le_bytes());
        }

        fn idb(&mut self, tsresol: Option<u8>) {
            let mut body = Vec::new();
            body.extend_from_slice(&101u16.to_le_bytes()); // linktype raw
            body.extend_from_slice(&0u16.to_le_bytes());
            body.extend_from_slice(&0u32.to_le_bytes()); // snaplen
            if let Some(v) = tsresol {
                body.extend_from_slice(&9u16.to_le_bytes());
                body.extend_from_slice(&1u16.to_le_bytes());
                body.push(v);
                body.extend_from_slice(&[0, 0, 0]); // pad
                body.extend_from_slice(&0u16.to_le_bytes()); // endofopt
                body.extend_from_slice(&0u16.to_le_bytes());
            }
            self.block(IDB_TYPE, &body);
        }

        fn epb(&mut self, iface: u32, ticks: u64, payload: &[u8], orig_len: u32) {
            let mut body = Vec::new();
            body.extend_from_slice(&iface.to_le_bytes());
            body.extend_from_slice(&((ticks >> 32) as u32).to_le_bytes());
            body.extend_from_slice(&((ticks & 0xffff_ffff) as u32).to_le_bytes());
            body.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            body.extend_from_slice(&orig_len.to_le_bytes());
            body.extend_from_slice(payload);
            while body.len() % 4 != 0 {
                body.push(0);
            }
            self.block(EPB_TYPE, &body);
        }
    }

    /// A synthetic IPv4+TCP header like the classic writer's.
    fn ipv4_payload(size: u16, proto: u8, sport: u16, dport: u16) -> Vec<u8> {
        let mut h = vec![0u8; 28];
        h[0] = 0x45;
        h[2..4].copy_from_slice(&size.to_be_bytes());
        h[9] = proto;
        h[12] = 10;
        h[16] = 10;
        h[20..22].copy_from_slice(&sport.to_be_bytes());
        h[22..24].copy_from_slice(&dport.to_be_bytes());
        h
    }

    #[test]
    fn reads_epb_with_default_microsecond_resolution() {
        let mut b = Builder::new();
        b.idb(None);
        b.epb(0, 1_500_000, &ipv4_payload(552, 6, 1024, 20), 552);
        b.epb(0, 2_500_000, &ipv4_payload(40, 17, 53, 53), 40);
        let t = read_pcapng(b.buf.as_slice()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.packets()[0].timestamp, Micros(1_500_000));
        assert_eq!(t.packets()[0].size, 552);
        assert_eq!(t.packets()[0].protocol, Protocol::Tcp);
        assert_eq!(t.packets()[0].dst_port, 20);
        assert_eq!(t.packets()[1].protocol, Protocol::Udp);
    }

    #[test]
    fn honors_nanosecond_tsresol() {
        let mut b = Builder::new();
        b.idb(Some(9)); // 10^-9: nanoseconds
        b.epb(0, 3_000_000_000, &ipv4_payload(100, 6, 1, 2), 100);
        let t = read_pcapng(b.buf.as_slice()).unwrap();
        assert_eq!(t.packets()[0].timestamp, Micros(3_000_000));
    }

    #[test]
    fn honors_power_of_two_tsresol() {
        let mut b = Builder::new();
        b.idb(Some(0x80 | 10)); // 2^-10 ~ 1024 ticks/sec
        b.epb(0, 2048, &ipv4_payload(100, 6, 1, 2), 100);
        let t = read_pcapng(b.buf.as_slice()).unwrap();
        // 2048 ticks at 1024/s = 2 s.
        assert_eq!(t.packets()[0].timestamp, Micros(2_000_000));
    }

    #[test]
    fn multi_interface_resolutions() {
        let mut b = Builder::new();
        b.idb(None); // iface 0: us
        b.idb(Some(3)); // iface 1: ms
        b.epb(0, 5_000_000, &ipv4_payload(40, 6, 1, 2), 40);
        b.epb(1, 2_000, &ipv4_payload(40, 6, 1, 2), 40); // 2000 ms = 2 s
        let t = read_pcapng(b.buf.as_slice()).unwrap();
        let ts: Vec<u64> = t.iter().map(|p| p.timestamp.as_u64()).collect();
        assert_eq!(ts, vec![2_000_000, 5_000_000]); // sorted
    }

    #[test]
    fn unknown_blocks_are_skipped() {
        let mut b = Builder::new();
        b.idb(None);
        b.block(0x0000_0BAD, &[1, 2, 3, 4, 5, 6, 7, 8]);
        b.epb(0, 1, &ipv4_payload(40, 6, 1, 2), 40);
        let t = read_pcapng(b.buf.as_slice()).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn short_inputs_report_truncation_not_io() {
        // 0-, 1- and 3-byte streams (prefixes of a valid capture) are
        // truncated captures, never raw I/O errors — and never an empty
        // trace: a pcapng stream must open with a full SHB.
        let valid = Builder::new().buf;
        for len in [0usize, 1, 3] {
            assert!(
                matches!(
                    read_pcapng(&valid[..len]),
                    Err(TraceError::TruncatedRecord { packets_read: 0 })
                ),
                "read_pcapng len {len}"
            );
            assert!(
                matches!(
                    read_capture(&valid[..len]),
                    Err(TraceError::TruncatedRecord { packets_read: 0 })
                ),
                "read_capture len {len}"
            );
        }
    }

    #[test]
    fn rejects_non_pcapng() {
        let garbage = [0xffu8; 64];
        assert!(matches!(
            read_pcapng(&garbage[..]),
            Err(TraceError::BadMagic(_))
        ));
    }

    #[test]
    fn detects_truncation() {
        let mut b = Builder::new();
        b.idb(None);
        b.epb(0, 1, &ipv4_payload(40, 6, 1, 2), 40);
        let mut buf = b.buf;
        buf.truncate(buf.len() - 3);
        assert!(matches!(
            read_pcapng(buf.as_slice()),
            Err(TraceError::TruncatedRecord { .. })
        ));
    }

    #[test]
    fn read_capture_sniffs_both_formats() {
        // pcapng stream:
        let mut b = Builder::new();
        b.idb(None);
        b.epb(0, 7, &ipv4_payload(40, 6, 1, 2), 40);
        let t = read_capture(b.buf.as_slice()).unwrap();
        assert_eq!(t.len(), 1);
        // classic pcap stream:
        let classic = {
            let trace = Trace::new(vec![PacketRecord::new(Micros(9), 40)]).unwrap();
            let mut buf = Vec::new();
            crate::pcap::write_pcap(&mut buf, &trace).unwrap();
            buf
        };
        let t = read_capture(classic.as_slice()).unwrap();
        assert_eq!(t.len(), 1);
        // garbage:
        assert!(read_capture(&[0u8; 32][..]).is_err());
    }
}
