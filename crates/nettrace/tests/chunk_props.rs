//! Property tests for the columnar ingest surface: decoding a capture
//! in chunks into a [`PacketBatch`] is exactly the per-packet decode
//! projected onto columns — same packets, same order, all four columns
//! — for pcap and pcapng (including multi-section streams), at any
//! chunk size, and up to the same fault on damaged tails.

use nettrace::{CaptureStream, Micros, PacketBatch, PacketRecord, Trace};
use proptest::prelude::*;

/// Monotone packets from (gap, size) pairs.
fn packets(gaps: &[(u64, u16)]) -> Vec<PacketRecord> {
    let mut t = 0u64;
    gaps.iter()
        .map(|&(gap, size)| {
            t += gap;
            PacketRecord::new(Micros(t), size)
        })
        .collect()
}

fn pcap_bytes(pkts: Vec<PacketRecord>) -> Vec<u8> {
    let trace = Trace::new(pkts).expect("monotone timestamps");
    let mut buf = Vec::new();
    nettrace::pcap::write_pcap(&mut buf, &trace).expect("in-memory write");
    buf
}

// pcapng block constants (the on-wire format, not crate internals).
const SHB: u32 = 0x0A0D_0D0A;
const BOM: u32 = 0x1A2B_3C4D;
const IDB: u32 = 1;
const EPB: u32 = 6;
const SPB: u32 = 3;

fn ng_block(buf: &mut Vec<u8>, btype: u32, body: &[u8]) {
    let total = 12 + body.len() as u32;
    buf.extend_from_slice(&btype.to_le_bytes());
    buf.extend_from_slice(&total.to_le_bytes());
    buf.extend_from_slice(body);
    buf.extend_from_slice(&total.to_le_bytes());
}

/// A little-endian pcapng stream with one section per inner vec; each
/// packet is an EPB, or an SPB (no timestamp) when `spb` is set.
fn pcapng_bytes(sections: &[Vec<(u64, u16, bool)>]) -> Vec<u8> {
    let mut buf = Vec::new();
    for section in sections {
        let mut shb = Vec::new();
        shb.extend_from_slice(&BOM.to_le_bytes());
        shb.extend_from_slice(&1u16.to_le_bytes());
        shb.extend_from_slice(&0u16.to_le_bytes());
        shb.extend_from_slice(&(-1i64).to_le_bytes());
        ng_block(&mut buf, SHB, &shb);
        let mut idb = Vec::new();
        idb.extend_from_slice(&101u16.to_le_bytes()); // linktype raw
        idb.extend_from_slice(&0u16.to_le_bytes());
        idb.extend_from_slice(&0u32.to_le_bytes()); // snaplen
        ng_block(&mut buf, IDB, &idb);
        for &(ticks, size, spb) in section {
            if spb {
                let mut body = Vec::new();
                body.extend_from_slice(&u32::from(size).to_le_bytes());
                ng_block(&mut buf, SPB, &body);
            } else {
                let mut body = Vec::new();
                body.extend_from_slice(&0u32.to_le_bytes()); // interface 0
                body.extend_from_slice(&((ticks >> 32) as u32).to_le_bytes());
                body.extend_from_slice(&((ticks & 0xffff_ffff) as u32).to_le_bytes());
                body.extend_from_slice(&0u32.to_le_bytes()); // caplen 0
                body.extend_from_slice(&u32::from(size).to_le_bytes());
                ng_block(&mut buf, EPB, &body);
            }
        }
    }
    buf
}

/// Pull every packet one at a time; also returns the terminal error,
/// if any.
fn pull_all(bytes: &[u8]) -> (Vec<PacketRecord>, Option<nettrace::TraceError>) {
    let mut s = CaptureStream::new(bytes).expect("header decodes");
    let mut out = Vec::new();
    loop {
        match s.next_packet() {
            Ok(Some(p)) => out.push(p),
            Ok(None) => return (out, None),
            Err(e) => return (out, Some(e)),
        }
    }
}

/// Decode in `chunk`-sized columnar chunks; also returns the terminal
/// error, if any.
fn chunk_all(bytes: &[u8], chunk: usize) -> (PacketBatch, Option<nettrace::TraceError>) {
    let mut s = CaptureStream::new(bytes).expect("header decodes");
    let mut batch = PacketBatch::new();
    loop {
        match s.next_chunk(chunk, &mut batch) {
            Ok(0) => return (batch, None),
            Ok(n) => assert!(n <= chunk, "chunk overshot: {n} > {chunk}"),
            Err(e) => return (batch, Some(e)),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // pcap: any packet mix, any chunk size — chunked columns are the
    // per-packet decode projected by `PacketBatch::from_records`.
    #[test]
    fn pcap_chunks_match_per_packet_decode(
        gaps in prop::collection::vec((0u64..50_000, 0u16..1600), 0..150),
        chunk in 1usize..64,
    ) {
        let bytes = pcap_bytes(packets(&gaps));
        let (pulled, pull_err) = pull_all(&bytes);
        let (batch, chunk_err) = chunk_all(&bytes, chunk);
        prop_assert!(pull_err.is_none() && chunk_err.is_none());
        prop_assert_eq!(pulled.len(), gaps.len());
        prop_assert_eq!(batch, PacketBatch::from_records(&pulled));
    }

    // pcap with a mid-record truncation: both paths must salvage the
    // same decoded prefix before reporting the fault.
    #[test]
    fn pcap_chunks_salvage_the_same_prefix_on_truncation(
        gaps in prop::collection::vec((0u64..50_000, 0u16..1600), 1..80),
        chunk in 1usize..32,
        cut in 1usize..16,
    ) {
        let mut bytes = pcap_bytes(packets(&gaps));
        // A pcap record is at least 16 bytes, so cutting < 16 bytes
        // always truncates mid-record rather than deleting one whole.
        bytes.truncate(bytes.len() - cut);
        let (pulled, pull_err) = pull_all(&bytes);
        let (batch, chunk_err) = chunk_all(&bytes, chunk);
        prop_assert!(pull_err.is_some() && chunk_err.is_some());
        prop_assert_eq!(pulled.len(), gaps.len() - 1);
        prop_assert_eq!(batch, PacketBatch::from_records(&pulled));
    }

    // pcapng: multiple sections (each SHB resets the interface table),
    // EPB/SPB mixes, chunk seams landing anywhere — including across
    // section boundaries.
    #[test]
    fn pcapng_chunks_match_per_packet_decode_across_sections(
        sections in prop::collection::vec(
            prop::collection::vec((0u64..1u64 << 40, 0u16..1600, any::<bool>()), 0..40),
            1..4,
        ),
        chunk in 1usize..32,
    ) {
        let bytes = pcapng_bytes(&sections);
        let (pulled, pull_err) = pull_all(&bytes);
        let (batch, chunk_err) = chunk_all(&bytes, chunk);
        prop_assert!(pull_err.is_none() && chunk_err.is_none());
        let expected: usize = sections.iter().map(Vec::len).sum();
        prop_assert_eq!(pulled.len(), expected);
        prop_assert_eq!(batch, PacketBatch::from_records(&pulled));
    }
}
