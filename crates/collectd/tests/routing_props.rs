//! Property tests for the collector's routing and sharding contracts:
//!
//! * (tenant, interface) → shard is a pure function of the pair, and is
//!   **divisibility-stable**: when `S'` divides `S`, the shard under
//!   `S'` is the shard under `S` folded modulo `S'` — halving a
//!   deployment re-groups lanes instead of reshuffling them.
//! * Merged per-shard reports are bit-for-bit equal to a single-shard
//!   run on the same interleaved input, at any shard count.

use collectd::{report_jsonl, route, run_collector, CollectorConfig, LaneSource, RoutingPlan};
use netstat_sim::Fleet;
use netsynth::FlowSizeDist;
use parkit::Pool;
use proptest::prelude::*;
use sampling::{MethodSpec, Target};
use streamkit::StreamMethod;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // `route(t, i, S) mod S' == route(t, i, S')` whenever `S'` divides
    // `S` — the modulo-reduction stability the docs promise.
    #[test]
    fn routing_is_stable_across_evenly_dividing_shard_counts(
        tenant in 0u32..10_000,
        interface in 0u32..10_000,
        divisor in 1u32..16,
        factor in 1u32..16,
    ) {
        let small = divisor;
        let large = divisor * factor;
        let under_large = route(tenant, interface, large).unwrap();
        let under_small = route(tenant, interface, small).unwrap();
        prop_assert_eq!(under_large % small, under_small);
    }

    // The same stability holds for whole materialized plans.
    #[test]
    fn plans_fold_when_shard_counts_divide(
        tenants in 1u32..6,
        interfaces in 1u32..6,
        divisor in 1u32..8,
        factor in 1u32..8,
    ) {
        let fleet = Fleet::anonymous(tenants, interfaces).unwrap();
        let large = RoutingPlan::new(&fleet, divisor * factor).unwrap();
        let small = RoutingPlan::new(&fleet, divisor).unwrap();
        for lane in fleet.lanes() {
            prop_assert_eq!(
                large.shard_of_lane(lane.lane).unwrap() % divisor,
                small.shard_of_lane(lane.lane).unwrap()
            );
        }
    }

    // Merged multi-shard reports equal the single-shard run bit for
    // bit on the same interleaved input — rendered JSONL compared as
    // strings, so float formatting is part of the contract.
    #[test]
    fn merged_shard_reports_match_single_shard_bit_for_bit(
        shards in 2u32..7,
        tenants in 1u32..4,
        interfaces in 1u32..4,
        seed in 0u64..1_000,
        interval in 2usize..12,
    ) {
        let cfg = |s: u32| CollectorConfig {
            fleet: Fleet::anonymous(tenants, interfaces).unwrap(),
            shards: s,
            method: StreamMethod::Spec(MethodSpec::Systematic { interval }),
            target: Target::PacketSize,
            windows: 2,
            window_packets: 200,
            lane_queue: 150,
            lane_flow_budget: 32,
            seed,
            source: LaneSource::Synth {
                flows_per_window: 10,
                size_dist: FlowSizeDist::LogNormal { mean: 2.0, std: 1.0 },
                mean_gap_us: 40,
            },
        };
        let pool = Pool::with_default_jobs();
        let single = run_collector(cfg(1), &pool, None, |_| {}).unwrap();
        let multi = run_collector(cfg(shards), &pool, None, |_| {}).unwrap();
        let single_lines: Vec<String> = single.reports.iter().map(report_jsonl).collect();
        let multi_lines: Vec<String> = multi.reports.iter().map(report_jsonl).collect();
        prop_assert_eq!(single_lines, multi_lines);
        prop_assert_eq!(single.summary.ingested, multi.summary.ingested);
        prop_assert_eq!(single.summary.selected, multi.summary.selected);
        prop_assert_eq!(single.summary.max_live_flows, multi.summary.max_live_flows);
    }
}
