//! # collectd — the sharded multi-interface collector daemon
//!
//! The paper's samplers run inside a measurement device on a live
//! backbone; this crate is that device, grown to service scale. A
//! [`Collector`] multiplexes N virtual interfaces × M tenants (a
//! [`netstat_sim::Fleet`]) onto S shards:
//!
//! * **Routing** ([`route`]): a stateless splitmix64 hash of the
//!   (tenant, interface) pair, modulo the shard count — stable across
//!   processes and across shard counts that divide evenly.
//! * **Lanes**: each (tenant, interface) pair owns its own netsynth
//!   source, sampler (any stream family), flow-budgeted windower and
//!   flow tables; all of it a pure function of `(seed, lane)`. Shards
//!   are threading units only, so the merged output is bit-identical at
//!   any shard count — the same merge-by-index contract parkit enforces.
//! * **Rounds**: one round = one window per lane. Shards advance in
//!   parallel on a parkit pool with `CounterShard` lock-free ingest
//!   tallies; each lane sheds arrivals beyond its queue bound
//!   (conservation: `ingested == considered + shed`).
//! * **Reports** ([`TenantWindowReport`]): per-(window, tenant) merges
//!   of φ, flow counts, SYN flows, and statkit inversion estimates over
//!   the sampled flow tables, rendered as deterministic JSONL.
//! * **Telemetry**: `collectd_shard_flows{shard}`,
//!   `collectd_shard_rss_kb{shard}`, eviction and routing-imbalance
//!   gauges on the obskit registry for the `--serve` scrape plane and
//!   its alert rules.
//!
//! `netsample serve` is the CLI front end; the ci.sh `collect` stage
//! soaks it to ≥1M aggregate live flows with per-shard budgets
//! enforced.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod daemon;
pub mod error;
pub mod report;
pub mod route;

pub use daemon::{
    run_collector, Collector, CollectorConfig, CollectorOutput, LaneSource, LaneWindow, RoundStats,
};
pub use error::CollectError;
pub use report::{report_jsonl, summary_jsonl, CollectorSummary, TenantWindowReport};
pub use route::{route, route_key, RoutingPlan};

#[cfg(test)]
mod tests {
    use super::*;
    use netstat_sim::Fleet;
    use netsynth::FlowSizeDist;
    use parkit::Pool;
    use sampling::{MethodSpec, Target};
    use streamkit::StreamMethod;

    fn small_cfg(shards: u32) -> CollectorConfig {
        CollectorConfig {
            fleet: Fleet::anonymous(2, 2).unwrap(),
            shards,
            method: StreamMethod::Spec(MethodSpec::Systematic { interval: 10 }),
            target: Target::PacketSize,
            windows: 3,
            window_packets: 500,
            lane_queue: 400,
            lane_flow_budget: 64,
            seed: 1993,
            source: LaneSource::Synth {
                flows_per_window: 20,
                size_dist: FlowSizeDist::Zipf {
                    max_size: 200,
                    alpha: 1.2,
                },
                mean_gap_us: 50,
            },
        }
    }

    #[test]
    fn rounds_conserve_packets_and_emit_per_tenant_reports() {
        let pool = Pool::serial();
        let out = run_collector(small_cfg(2), &pool, None, |_| {}).unwrap();
        let s = &out.summary;
        assert_eq!(s.ingested, s.considered + s.shed, "conservation");
        // 4 lanes × 3 windows × 500 arrivals.
        assert_eq!(s.ingested, 6_000);
        assert_eq!(s.considered, 4_800);
        assert_eq!(s.shed, 1_200);
        assert!(!s.drained);
        assert_eq!(s.windows_completed, 3);
        // One report per (window, tenant).
        assert_eq!(out.reports.len(), 6);
        for r in &out.reports {
            assert_eq!(r.lanes, 2);
            assert_eq!(r.packets, 800);
            assert_eq!(r.shed, 200);
            assert!(r.phi.is_some());
            assert!(r.est_flows_naive.is_some(), "systematic gets inversion");
        }
        // Reports arrive sorted (window, tenant).
        let keys: Vec<(u64, String)> = out
            .reports
            .iter()
            .map(|r| (r.window, r.tenant.clone()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn multi_shard_output_is_bit_identical_to_single_shard() {
        let pool = Pool::serial();
        let one = run_collector(small_cfg(1), &pool, None, |_| {}).unwrap();
        let four = run_collector(small_cfg(4), &pool, None, |_| {}).unwrap();
        let lines =
            |o: &CollectorOutput| o.reports.iter().map(report_jsonl).collect::<Vec<String>>();
        assert_eq!(lines(&one), lines(&four));
        assert_eq!(one.summary.max_live_flows, four.summary.max_live_flows);
        assert_eq!(one.summary.selected, four.summary.selected);
    }

    #[test]
    fn parallel_pool_matches_serial() {
        let serial = run_collector(small_cfg(4), &Pool::serial(), None, |_| {}).unwrap();
        let parallel = run_collector(small_cfg(4), &Pool::new(4), None, |_| {}).unwrap();
        let lines =
            |o: &CollectorOutput| o.reports.iter().map(report_jsonl).collect::<Vec<String>>();
        assert_eq!(lines(&serial), lines(&parallel));
    }

    #[test]
    fn flow_budget_bounds_reported_flows_and_counts_evictions() {
        let mut cfg = small_cfg(2);
        cfg.lane_flow_budget = 8;
        let out = run_collector(cfg, &Pool::serial(), None, |_| {}).unwrap();
        for r in &out.reports {
            assert!(r.flows <= 16, "2 lanes × budget 8");
            assert!(
                r.evicted_flows > 0,
                "20 flows/window must evict at budget 8"
            );
        }
        assert!(out.summary.evicted_flows > 0);
        // A shard holds at most (lanes it hosts) × budget; the hash may
        // route up to all 4 lanes onto one shard.
        assert!(out.summary.max_shard_flows <= 32);
    }

    #[test]
    fn replay_lanes_run_without_flow_ids() {
        let mut cfg = small_cfg(2);
        cfg.source = LaneSource::Replay { pace_pps: 0 };
        cfg.lane_queue = 500;
        let out = run_collector(cfg, &Pool::serial(), None, |_| {}).unwrap();
        assert_eq!(out.summary.ingested, 6_000);
        assert_eq!(out.summary.shed, 0);
        // 5-tuple keyed: flows still counted, no synthetic ids.
        assert!(out.reports.iter().all(|r| r.flows > 0));
    }

    #[test]
    fn reshard_mid_stream_is_a_typed_mismatch() {
        let pool = Pool::serial();
        let mut c = Collector::new(small_cfg(2)).unwrap();
        c.reshard(4).unwrap(); // legal before ingest
        c.run_round(&pool).unwrap();
        assert_eq!(
            c.reshard(2).unwrap_err(),
            CollectError::ShardMismatch {
                expected: 4,
                got: 2
            }
        );
    }

    #[test]
    fn degenerate_configs_are_typed_errors() {
        let mut cfg = small_cfg(0);
        assert_eq!(
            Collector::new(cfg.clone()).err().unwrap(),
            CollectError::NoShards
        );
        cfg.shards = 1;
        cfg.windows = 0;
        assert!(matches!(
            Collector::new(cfg.clone()).err().unwrap(),
            CollectError::BadConfig(_)
        ));
        cfg.windows = 1;
        cfg.lane_queue = 0;
        assert!(matches!(
            Collector::new(cfg.clone()).err().unwrap(),
            CollectError::BadConfig(_)
        ));
        cfg.lane_queue = 10;
        cfg.lane_flow_budget = 0;
        assert!(matches!(
            Collector::new(cfg).err().unwrap(),
            CollectError::BadConfig(_)
        ));
    }

    #[test]
    fn drain_deadline_flushes_partial_windows_and_conserves_packets() {
        use std::time::{Duration, Instant};
        let mut cfg = small_cfg(2);
        // A window far larger than 60ms of generation: the deadline
        // interrupts mid-window and the drain path must flush partials.
        cfg.windows = 1_000;
        cfg.window_packets = 50_000_000;
        cfg.lane_queue = 40_000_000;
        cfg.source = LaneSource::Synth {
            flows_per_window: 1_000,
            size_dist: FlowSizeDist::Geometric { p: 0.05 },
            mean_gap_us: 10,
        };
        let deadline = Instant::now() + Duration::from_millis(60);
        let out = run_collector(cfg, &Pool::serial(), Some(deadline), |_| {}).unwrap();
        let s = &out.summary;
        assert!(s.drained, "the deadline must end the run early");
        assert!(s.windows_completed < 1_000);
        // The drain contract: every arrival is accounted for.
        assert_eq!(s.ingested, s.considered + s.shed, "conservation");
        assert!(s.ingested > 0, "some packets flowed before the deadline");
        // finish() flushed the partial windows: reported packets cover
        // everything the samplers considered.
        let reported: u64 = out.reports.iter().map(|r| r.packets).sum();
        assert_eq!(reported, s.considered);
        let line = summary_jsonl(s);
        assert!(line.contains("\"drained\":true"));
    }

    #[test]
    fn observer_sees_monotone_rounds_and_shard_gauges() {
        let mut rounds = Vec::new();
        let out = run_collector(small_cfg(2), &Pool::serial(), None, |r| {
            rounds.push((r.round, r.live_flows, r.shard_flows.clone()));
        })
        .unwrap();
        assert_eq!(rounds.len(), 3);
        for (i, (round, live, shards)) in rounds.iter().enumerate() {
            assert_eq!(*round, i as u64);
            assert_eq!(shards.len(), 2);
            assert_eq!(*live, shards.iter().sum::<u64>());
        }
        assert_eq!(
            out.summary.max_live_flows,
            rounds.iter().map(|r| r.1).max().unwrap()
        );
    }
}
