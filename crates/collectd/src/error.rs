//! Typed collector errors.
//!
//! Everything a hostile configuration or a faulted ingest can provoke
//! surfaces here — the faultkit statefuzz arm drives the collector with
//! garbage tenant ids, zero-interface fleets and mid-stream shard-count
//! mismatches and asserts it only ever sees these variants, never a
//! panic.

use netstat_sim::FleetError;
use std::fmt;

/// Why the collector refused a configuration or an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CollectError {
    /// The fleet definition was rejected (hostile tenant ids,
    /// zero-interface configs, lane-cap overflow …).
    Fleet(FleetError),
    /// `shards == 0` — there is nowhere to route a lane.
    NoShards,
    /// A routing lookup named a (tenant, interface) outside the fleet.
    UnknownLane {
        /// Requested tenant index.
        tenant: u32,
        /// Requested interface index.
        interface: u32,
    },
    /// The shard count changed mid-stream: state sharded one way cannot
    /// be re-keyed another way without replaying from the start.
    ShardMismatch {
        /// Shard count the collector was built with.
        expected: u32,
        /// Shard count the operation asked for.
        got: u32,
    },
    /// A run-shape parameter was degenerate (zero windows, zero window
    /// packets, zero lane queue …); the message names it.
    BadConfig(String),
    /// The sampling method could not be instantiated.
    Build(String),
    /// A replay lane's decoder faulted.
    Trace(String),
    /// The worker pool reported a panicked shard task.
    Pool(String),
    /// The collector already finished; no further rounds can run.
    Finished,
}

impl fmt::Display for CollectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectError::Fleet(e) => write!(f, "fleet: {e}"),
            CollectError::NoShards => write!(f, "shard count must be positive"),
            CollectError::UnknownLane { tenant, interface } => {
                write!(
                    f,
                    "no lane (tenant {tenant}, interface {interface}) in the fleet"
                )
            }
            CollectError::ShardMismatch { expected, got } => write!(
                f,
                "shard count changed mid-stream: built with {expected}, asked for {got}"
            ),
            CollectError::BadConfig(msg) => write!(f, "bad collector config: {msg}"),
            CollectError::Build(msg) => write!(f, "sampler build: {msg}"),
            CollectError::Trace(msg) => write!(f, "replay decode: {msg}"),
            CollectError::Pool(msg) => write!(f, "shard pool: {msg}"),
            CollectError::Finished => write!(f, "collector already finished"),
        }
    }
}

impl std::error::Error for CollectError {}

impl From<FleetError> for CollectError {
    fn from(e: FleetError) -> Self {
        CollectError::Fleet(e)
    }
}

impl From<nettrace::TraceError> for CollectError {
    fn from(e: nettrace::TraceError) -> Self {
        CollectError::Trace(e.to_string())
    }
}

impl From<parkit::PoolError> for CollectError {
    fn from(e: parkit::PoolError) -> Self {
        CollectError::Pool(e.to_string())
    }
}
