//! Per-tenant window reports, the run summary, and their JSONL forms.
//!
//! The JSONL renderers are byte-deterministic: every field is emitted
//! in a fixed order with `{}`-default float formatting (shortest
//! round-trip representation), so two runs with the same seed — or the
//! same run at different shard counts — byte-diff clean. The ci.sh
//! `collect` stage relies on that. Tenant ids need no escaping: the
//! [`netstat_sim::Fleet`] validation restricts them to label-safe
//! printable ASCII.

use std::fmt::Write as _;

/// One tenant's aggregate over one window, merged across the tenant's
/// lanes in canonical lane order.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantWindowReport {
    /// Window index (== round).
    pub window: u64,
    /// Tenant id.
    pub tenant: String,
    /// Lanes that contributed a closed window.
    pub lanes: u32,
    /// Packets the tenant's lanes offered to their samplers.
    pub packets: u64,
    /// Packets selected by the samplers.
    pub selected: u64,
    /// Packets shed by the tenant's lane queues this window.
    pub shed: u64,
    /// Live flows across the tenant's lanes (budget-bounded).
    pub flows: u64,
    /// Flows whose first packet (SYN) fell in the window.
    pub syn_flows: u64,
    /// Flows the per-lane budgets evicted at the window merge.
    pub evicted_flows: u64,
    /// φ disparity between population and sample histograms (merged
    /// across lanes); `None` for an empty window.
    pub phi: Option<f64>,
    /// Flows observed among the *selected* packets (the sampled table).
    pub sampled_flows: u64,
    /// Sampled-table flows whose selected packets included a SYN.
    pub sampled_syn_flows: u64,
    /// Naive 1-in-k scaling estimate of the tenant's true flow count
    /// (systematic methods only).
    pub est_flows_naive: Option<f64>,
    /// Chabchoub-style tail-rescaled estimate.
    pub est_flows_tail: Option<f64>,
    /// SYN-count flow estimate.
    pub est_syn_flows: Option<f64>,
}

/// Whole-run summary, emitted as the final JSONL line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectorSummary {
    /// Shard count the run used.
    pub shards: u32,
    /// Tenants served.
    pub tenants: u32,
    /// Interfaces per tenant.
    pub interfaces: u32,
    /// Total lanes (tenants × interfaces).
    pub lanes: u32,
    /// Sampling method name.
    pub method: String,
    /// Collector-wide seed.
    pub seed: u64,
    /// Windows the config asked for.
    pub windows_configured: u64,
    /// Windows actually completed (partial drain windows count).
    pub windows_completed: u64,
    /// Per-lane packets per window.
    pub window_packets: u64,
    /// Packets that arrived across all lanes.
    pub ingested: u64,
    /// Packets offered to samplers.
    pub considered: u64,
    /// Packets shed by lane queues. Conservation:
    /// `ingested == considered + shed`.
    pub shed: u64,
    /// Packets selected by samplers.
    pub selected: u64,
    /// Sum of reported per-window flow counts.
    pub flows_reported: u64,
    /// Flows evicted by the per-lane budgets.
    pub evicted_flows: u64,
    /// Peak aggregate live-flow count across rounds — the soak target.
    pub max_live_flows: u64,
    /// Peak single-shard live-flow count.
    pub max_shard_flows: u64,
    /// Static routing imbalance ×1000 (1000 = balanced).
    pub routing_imbalance_x1000: u64,
    /// True when a drain deadline (or source exhaustion) ended the run
    /// before `windows_configured`.
    pub drained: bool,
}

/// `f64 → JSON` with `null` for non-finite values.
fn num(v: Option<f64>) -> String {
    match v {
        Some(v) if v.is_finite() => format!("{v}"),
        _ => "null".to_string(),
    }
}

/// Render one tenant-window report as a JSONL line (no trailing
/// newline).
#[must_use]
pub fn report_jsonl(r: &TenantWindowReport) -> String {
    let mut s = format!(
        "{{\"window\":{},\"tenant\":\"{}\",\"lanes\":{},\"packets\":{},\"selected\":{},\"shed\":{}",
        r.window, r.tenant, r.lanes, r.packets, r.selected, r.shed
    );
    let _ = write!(
        s,
        ",\"flows\":{},\"syn_flows\":{},\"evicted_flows\":{},\"phi\":{}",
        r.flows,
        r.syn_flows,
        r.evicted_flows,
        num(r.phi)
    );
    let _ = write!(
        s,
        ",\"sampled_flows\":{},\"sampled_syn_flows\":{},\"est_flows_naive\":{},\"est_flows_tail\":{},\"est_syn_flows\":{}}}",
        r.sampled_flows,
        r.sampled_syn_flows,
        num(r.est_flows_naive),
        num(r.est_flows_tail),
        num(r.est_syn_flows)
    );
    s
}

/// Render the run summary as a JSONL line (no trailing newline). The
/// `"summary":true` marker lets consumers split reports from the
/// trailer with a single grep.
#[must_use]
pub fn summary_jsonl(s: &CollectorSummary) -> String {
    let mut out = format!(
        "{{\"summary\":true,\"shards\":{},\"tenants\":{},\"interfaces\":{},\"lanes\":{},\"method\":\"{}\",\"seed\":{}",
        s.shards, s.tenants, s.interfaces, s.lanes, s.method, s.seed
    );
    let _ = write!(
        out,
        ",\"windows_configured\":{},\"windows_completed\":{},\"window_packets\":{}",
        s.windows_configured, s.windows_completed, s.window_packets
    );
    let _ = write!(
        out,
        ",\"ingested\":{},\"considered\":{},\"shed\":{},\"selected\":{}",
        s.ingested, s.considered, s.shed, s.selected
    );
    let _ = write!(
        out,
        ",\"flows_reported\":{},\"evicted_flows\":{},\"max_live_flows\":{},\"max_shard_flows\":{}",
        s.flows_reported, s.evicted_flows, s.max_live_flows, s.max_shard_flows
    );
    let _ = write!(
        out,
        ",\"routing_imbalance_x1000\":{},\"drained\":{}}}",
        s.routing_imbalance_x1000, s.drained
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_line_is_stable_and_null_safe() {
        let r = TenantWindowReport {
            window: 3,
            tenant: "t0".into(),
            lanes: 2,
            packets: 100,
            selected: 10,
            shed: 5,
            flows: 7,
            syn_flows: 4,
            evicted_flows: 0,
            phi: Some(0.25),
            sampled_flows: 6,
            sampled_syn_flows: 2,
            est_flows_naive: Some(60.0),
            est_flows_tail: None,
            est_syn_flows: Some(f64::NAN),
        };
        let line = report_jsonl(&r);
        assert!(line.starts_with("{\"window\":3,\"tenant\":\"t0\""));
        assert!(line.contains("\"phi\":0.25"));
        assert!(line.contains("\"est_flows_tail\":null"));
        assert!(line.contains("\"est_syn_flows\":null"));
        assert_eq!(line, report_jsonl(&r), "rendering is deterministic");
    }

    #[test]
    fn summary_line_carries_the_conservation_fields() {
        let s = CollectorSummary {
            shards: 4,
            tenants: 2,
            interfaces: 4,
            lanes: 8,
            method: "systematic(k=10)".into(),
            seed: 1993,
            windows_configured: 2,
            windows_completed: 2,
            window_packets: 1000,
            ingested: 16_000,
            considered: 12_000,
            shed: 4_000,
            selected: 1_200,
            flows_reported: 800,
            evicted_flows: 0,
            max_live_flows: 400,
            max_shard_flows: 150,
            routing_imbalance_x1000: 1000,
            drained: false,
        };
        let line = summary_jsonl(&s);
        assert!(line.contains("\"summary\":true"));
        assert!(line.contains("\"ingested\":16000,\"considered\":12000,\"shed\":4000"));
        assert!(line.contains("\"drained\":false"));
    }
}
