//! Deterministic (tenant, interface) → shard routing.
//!
//! The routing key is a splitmix64 finalizer over the packed lane pair,
//! reduced modulo the shard count. Two properties carry the collector's
//! guarantees:
//!
//! * **Pure function of the pair.** The hash never folds in the shard
//!   count, a seed, or anything run-local, so the same fleet routes the
//!   same way in every process — reports can name their shard and two
//!   operators will agree on it.
//! * **Divisibility stability.** Because the reduction is a plain `mod`,
//!   `route(t, i, S) ≡ route(t, i, S') (mod S')` whenever `S'` divides
//!   `S` — halving a deployment's shard count re-groups lanes by folding
//!   shards together instead of reshuffling them, which keeps warm flow
//!   state adjacent. The routing proptest pins this.

use crate::error::CollectError;
use netstat_sim::Fleet;

/// splitmix64 finalizer — the same mix the in-tree `rand` seeds with,
/// reused as a stateless hash.
#[must_use]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The stateless routing key for a (tenant, interface) pair.
#[must_use]
pub fn route_key(tenant: u32, interface: u32) -> u64 {
    splitmix64((u64::from(tenant) << 32) | u64::from(interface))
}

/// Route a (tenant, interface) pair onto one of `shards` shards.
///
/// # Errors
/// [`CollectError::NoShards`] when `shards == 0`.
pub fn route(tenant: u32, interface: u32, shards: u32) -> Result<u32, CollectError> {
    if shards == 0 {
        return Err(CollectError::NoShards);
    }
    Ok((route_key(tenant, interface) % u64::from(shards)) as u32)
}

/// A fleet's materialized routing: lane index → shard, plus the static
/// balance diagnostics the telemetry plane publishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingPlan {
    shards: u32,
    interfaces: u32,
    tenants: u32,
    /// `assignment[lane] = shard`, lane-indexed (tenant-major).
    assignment: Vec<u32>,
}

impl RoutingPlan {
    /// Route every lane of `fleet` onto `shards` shards.
    ///
    /// # Errors
    /// [`CollectError::NoShards`] when `shards == 0`.
    pub fn new(fleet: &Fleet, shards: u32) -> Result<RoutingPlan, CollectError> {
        if shards == 0 {
            return Err(CollectError::NoShards);
        }
        let assignment = fleet
            .lanes()
            .map(|l| route(l.tenant, l.interface, shards))
            .collect::<Result<Vec<u32>, CollectError>>()?;
        Ok(RoutingPlan {
            shards,
            interfaces: fleet.interfaces(),
            tenants: fleet.tenants().len() as u32,
            assignment,
        })
    }

    /// The shard count this plan was built for.
    #[must_use]
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Total lanes routed.
    #[must_use]
    pub fn lane_count(&self) -> u32 {
        self.assignment.len() as u32
    }

    /// The shard hosting a lane index.
    ///
    /// # Errors
    /// [`CollectError::UnknownLane`] for a lane outside the fleet.
    pub fn shard_of_lane(&self, lane: u32) -> Result<u32, CollectError> {
        self.assignment
            .get(lane as usize)
            .copied()
            .ok_or(CollectError::UnknownLane {
                tenant: lane / self.interfaces.max(1),
                interface: lane % self.interfaces.max(1),
            })
    }

    /// The shard hosting a (tenant, interface) pair.
    ///
    /// # Errors
    /// [`CollectError::UnknownLane`] when the pair is outside the fleet.
    pub fn shard_for(&self, tenant: u32, interface: u32) -> Result<u32, CollectError> {
        if tenant >= self.tenants || interface >= self.interfaces {
            return Err(CollectError::UnknownLane { tenant, interface });
        }
        self.shard_of_lane(tenant * self.interfaces + interface)
    }

    /// Lane indices hosted by `shard`, ascending — the order a shard
    /// iterates its lanes, fixed by the fleet alone.
    #[must_use]
    pub fn lanes_of(&self, shard: u32) -> Vec<u32> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == shard)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Lanes per shard, shard-indexed.
    #[must_use]
    pub fn loads(&self) -> Vec<u32> {
        let mut loads = vec![0u32; self.shards as usize];
        for &s in &self.assignment {
            loads[s as usize] += 1;
        }
        loads
    }

    /// Static routing imbalance: `max_shard_lanes / mean_shard_lanes`,
    /// scaled ×1000 (1000 = perfectly balanced). Published as the
    /// `collectd_routing_imbalance_x1000` gauge.
    #[must_use]
    pub fn imbalance_x1000(&self) -> u64 {
        let lanes = self.assignment.len() as u64;
        if lanes == 0 {
            return 1000;
        }
        let max = u64::from(self.loads().into_iter().max().unwrap_or(0));
        // max / (lanes / shards) × 1000, in integer math.
        max * u64::from(self.shards) * 1000 / lanes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_shards_is_a_typed_error() {
        assert_eq!(route(0, 0, 0).unwrap_err(), CollectError::NoShards);
        let fleet = Fleet::anonymous(2, 2).unwrap();
        assert_eq!(
            RoutingPlan::new(&fleet, 0).unwrap_err(),
            CollectError::NoShards
        );
    }

    #[test]
    fn plan_matches_the_stateless_route() {
        let fleet = Fleet::anonymous(3, 5).unwrap();
        let plan = RoutingPlan::new(&fleet, 4).unwrap();
        for lane in fleet.lanes() {
            assert_eq!(
                plan.shard_for(lane.tenant, lane.interface).unwrap(),
                route(lane.tenant, lane.interface, 4).unwrap()
            );
            assert_eq!(
                plan.shard_of_lane(lane.lane).unwrap(),
                plan.assignment[lane.lane as usize]
            );
        }
        assert_eq!(plan.loads().iter().sum::<u32>(), 15);
        assert!(plan.imbalance_x1000() >= 1000);
    }

    #[test]
    fn out_of_fleet_lookups_are_unknown_lane() {
        let fleet = Fleet::anonymous(2, 2).unwrap();
        let plan = RoutingPlan::new(&fleet, 2).unwrap();
        assert_eq!(
            plan.shard_for(2, 0).unwrap_err(),
            CollectError::UnknownLane {
                tenant: 2,
                interface: 0
            }
        );
        assert_eq!(
            plan.shard_for(0, 9).unwrap_err(),
            CollectError::UnknownLane {
                tenant: 0,
                interface: 9
            }
        );
        assert!(matches!(
            plan.shard_of_lane(4).unwrap_err(),
            CollectError::UnknownLane { .. }
        ));
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let fleet = Fleet::anonymous(4, 4).unwrap();
        let plan = RoutingPlan::new(&fleet, 1).unwrap();
        assert!(plan.loads() == vec![16]);
        assert_eq!(plan.imbalance_x1000(), 1000);
    }
}
