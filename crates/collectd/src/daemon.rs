//! The collector daemon: lanes, shards, rounds, and the merge.
//!
//! ## Determinism model
//!
//! A **lane** — one (tenant, interface) pair — owns the full measurement
//! pipeline for its stream: the traffic source, the sampler, the
//! windower, and the flow tables inside it. Every lane's stream and
//! sampler are pure functions of `(seed, lane)`. A **shard** is only the
//! *threading* unit: it hosts the lanes the [`RoutingPlan`] assigns to
//! it and processes them in ascending lane order. Because no per-packet
//! state lives at shard granularity, and the coordinator merges shard
//! results **by shard index** (parkit's contract) and then sorts lane
//! windows by `(window, lane)`, the merged output is bit-identical at
//! any shard count — S=4 reproduces S=1 exactly.
//!
//! ## Round = window
//!
//! The daemon advances in rounds. Each round, every live lane generates
//! `window_packets` packets (its "arrivals"), offers the first
//! `min(window_packets, lane_queue)` of them to its sampler+windower —
//! the rest are **shed**, modeling a bounded ingest queue — and the
//! count-window closes exactly at the offer bound, emitting one
//! [`WindowPayload`] per lane per round. Conservation holds by
//! construction and is asserted in the drain test:
//! `ingested == considered + shed`.
//!
//! ## Bounded memory
//!
//! Each lane's windower carries a flow budget
//! ([`CollectorConfig::lane_flow_budget`]); a shard hosting L lanes
//! therefore holds at most `L × budget` flows regardless of traffic —
//! the cap the `collectd_shard_rss_kb` gauge and its RSS-budget alert
//! rule watch. Eviction is the flow table's deterministic
//! least-recently-updated-first policy, so the cap never costs
//! determinism.

use crate::error::CollectError;
use crate::report::{CollectorSummary, TenantWindowReport};
use crate::route::RoutingPlan;
use netstat_sim::{Fleet, Lane};
use netsynth::{replay_lane, FlowSizeDist, LaneConfig, LaneGen, ReplayLane};
use nettrace::time::Micros;
use nettrace::PacketRecord;
use obskit::CounterShard;
use parkit::Pool;
use sampling::{MethodSpec, Target};
use statkit::inversion::{naive_scaling, syn_flow_count, tail_rescale};
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;
use streamkit::{StreamMethod, WindowPayload, WindowSpec, Windower};

/// Packets pulled from a lane source per inner step — small enough to
/// keep per-lane buffers cache-resident, large enough to amortize the
/// windower's dispatch.
const CHUNK: usize = 8_192;

/// Estimated resident bytes per live flow (hash entry + stats + LRU
/// index) — the accounting behind `collectd_shard_rss_kb`. Real RSS is
/// process-global; this model attributes the dominant per-shard state
/// (flow tables) so the per-shard budget rule has a shard-local signal.
const FLOW_STATE_BYTES: u64 = 96;

/// What feeds each lane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LaneSource {
    /// The windowed synthetic flow mix ([`netsynth::LaneGen`]):
    /// `flows_per_window` fresh flows per window with quotas from
    /// `size_dist`, `mean_gap_us` between packets.
    Synth {
        /// Fresh flows per lane per window.
        flows_per_window: u32,
        /// Parent flow-size distribution.
        size_dist: FlowSizeDist,
        /// Mean intra-lane packet gap (µs).
        mean_gap_us: u64,
    },
    /// Per-interface [`netsynth::PacedReader`] replay of the calibrated
    /// 1993 marginals (no flow ids; 5-tuple keyed).
    Replay {
        /// Replay pacing (packets/s; 0 = unpaced).
        pace_pps: u64,
    },
}

/// Full daemon configuration.
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// The tenant × interface fleet to serve.
    pub fleet: Fleet,
    /// Shard count (threading units).
    pub shards: u32,
    /// Sampling method instantiated per lane.
    pub method: StreamMethod,
    /// Characterization target for the per-window φ score.
    pub target: Target,
    /// Rounds (== windows) to run.
    pub windows: u64,
    /// Packets arriving per lane per window.
    pub window_packets: u64,
    /// Per-lane per-window ingest bound; arrivals beyond it are shed.
    pub lane_queue: u64,
    /// Per-lane flow budget (a shard hosting L lanes holds ≤ L × this).
    pub lane_flow_budget: usize,
    /// Collector-wide seed; lanes fold their index in.
    pub seed: u64,
    /// The lane traffic source.
    pub source: LaneSource,
}

impl CollectorConfig {
    /// Validate the run shape.
    ///
    /// # Errors
    /// [`CollectError::NoShards`] / [`CollectError::BadConfig`] naming
    /// the degenerate parameter.
    pub fn validate(&self) -> Result<(), CollectError> {
        if self.shards == 0 {
            return Err(CollectError::NoShards);
        }
        if self.windows == 0 {
            return Err(CollectError::BadConfig("zero windows".into()));
        }
        if self.window_packets == 0 {
            return Err(CollectError::BadConfig("zero window packets".into()));
        }
        if self.lane_queue == 0 {
            return Err(CollectError::BadConfig(
                "zero lane queue sheds everything".into(),
            ));
        }
        if self.lane_flow_budget == 0 {
            return Err(CollectError::BadConfig("zero lane flow budget".into()));
        }
        if let LaneSource::Synth {
            flows_per_window,
            mean_gap_us,
            ..
        } = self.source
        {
            if flows_per_window == 0 {
                return Err(CollectError::BadConfig("zero flows per window".into()));
            }
            if u64::from(flows_per_window) > self.window_packets {
                return Err(CollectError::BadConfig(format!(
                    "flows per window ({flows_per_window}) exceed window packets ({})",
                    self.window_packets
                )));
            }
            if mean_gap_us == 0 {
                return Err(CollectError::BadConfig("zero mean gap".into()));
            }
        }
        Ok(())
    }

    /// The inversion interval `k` when the method admits one — the
    /// statkit estimators model 1-in-k systematic thinning, so only the
    /// systematic family gets per-window inversion estimates.
    #[must_use]
    pub fn inversion_interval(&self) -> Option<u64> {
        match self.method {
            StreamMethod::Spec(MethodSpec::Systematic { interval }) if interval > 1 => {
                Some(interval as u64)
            }
            _ => None,
        }
    }

    /// Packets offered to each lane's sampler per round.
    #[must_use]
    fn effective_window(&self) -> u64 {
        self.window_packets.min(self.lane_queue)
    }
}

/// One lane's closed window, tagged for the merge.
#[derive(Debug, Clone)]
pub struct LaneWindow {
    /// The lane that produced it.
    pub lane: Lane,
    /// The windower's payload.
    pub payload: WindowPayload,
}

/// Per-round statistics handed to the observer (and the telemetry
/// plane) after each round's barrier.
#[derive(Debug, Clone)]
pub struct RoundStats {
    /// Round index (0-based; == the window index it closed).
    pub round: u64,
    /// Live flows per shard at the round's close (closed windows plus
    /// any partial state).
    pub shard_flows: Vec<u64>,
    /// Modeled resident KiB per shard (flow state accounting).
    pub shard_rss_kb: Vec<u64>,
    /// Cumulative evicted flows per shard.
    pub shard_evictions: Vec<u64>,
    /// Aggregate live flows across shards this round.
    pub live_flows: u64,
    /// Cumulative packets that arrived.
    pub ingested: u64,
    /// Cumulative packets offered to samplers.
    pub considered: u64,
    /// Cumulative packets shed by lane queues.
    pub shed: u64,
    /// Cumulative packets selected by samplers.
    pub selected: u64,
    /// True when a drain deadline interrupted this round.
    pub drained: bool,
}

/// The lane's feed. The replay reader is boxed: it carries a decode
/// buffer that would otherwise dominate every synth lane's footprint.
enum Feed {
    Gen(Box<LaneGen>),
    Replay(Box<ReplayLane>),
    /// A replay that ran out of bytes; the lane idles.
    Dry,
}

/// One lane's live pipeline state.
struct LaneState {
    lane: Lane,
    feed: Feed,
    windower: Windower,
    /// Cumulative evicted flows reported by closed windows.
    evicted: u64,
}

/// Everything one shard owns. Wrapped in a `Mutex` so the coordinator
/// can hand `&self` closures to the pool; one task per shard means the
/// lock is never contended.
struct ShardState {
    lanes: Vec<LaneState>,
    /// Lock-free ingest tally, flushed to the labeled backing counter
    /// once per round.
    ingest: CounterShard,
    shed_ctr: CounterShard,
}

/// A shard's output for one round.
struct ShardRound {
    windows: Vec<LaneWindow>,
    /// Per-lane `(lane, ingested, considered, shed)` for this round.
    lane_rounds: Vec<(u32, u64, u64, u64)>,
    live_flows: u64,
    evictions: u64,
    selected_delta: u64,
}

/// The finished run: merged per-tenant reports plus the summary.
#[derive(Debug, Clone)]
pub struct CollectorOutput {
    /// Per-(window, tenant) reports, sorted by `(window, tenant)`.
    pub reports: Vec<TenantWindowReport>,
    /// Whole-run summary.
    pub summary: CollectorSummary,
}

/// The long-running collector. Owns the routing plan and the shards;
/// [`Collector::run_round`] advances all shards one window in parallel.
pub struct Collector {
    cfg: CollectorConfig,
    plan: RoutingPlan,
    shards: Vec<Mutex<ShardState>>,
    round: u64,
    windows: Vec<LaneWindow>,
    /// (round, lane) → (ingested, considered, shed).
    lane_rounds: BTreeMap<(u64, u32), (u64, u64, u64)>,
    ingested: u64,
    considered: u64,
    shed: u64,
    selected: u64,
    max_live_flows: u64,
    max_shard_flows: u64,
    evictions: Vec<u64>,
    drained: bool,
    /// Optional wall-clock drain deadline (the `--duration` contract):
    /// crossed mid-round, lanes stop generating, partial windows flush.
    pub deadline: Option<Instant>,
}

impl Collector {
    /// Build the daemon: route the fleet, instantiate every lane's
    /// source and sampler.
    ///
    /// # Errors
    /// Config validation, routing, and sampler-construction errors.
    pub fn new(cfg: CollectorConfig) -> Result<Collector, CollectError> {
        cfg.validate()?;
        let plan = RoutingPlan::new(&cfg.fleet, cfg.shards)?;
        let effective = cfg.effective_window();
        let mut shards = Vec::with_capacity(cfg.shards as usize);
        let lanes: Vec<Lane> = cfg.fleet.lanes().collect();
        for shard in 0..cfg.shards {
            let mut lane_states = Vec::new();
            for &li in plan.lanes_of(shard).iter() {
                let lane = lanes[li as usize];
                let feed = match cfg.source {
                    LaneSource::Synth {
                        flows_per_window,
                        size_dist,
                        mean_gap_us,
                    } => Feed::Gen(Box::new(LaneGen::new(LaneConfig {
                        seed: cfg.seed,
                        lane: lane.lane,
                        window_packets: cfg.window_packets,
                        flows_per_window,
                        size_dist,
                        mean_gap_us,
                    }))),
                    LaneSource::Replay { pace_pps } => Feed::Replay(Box::new(replay_lane(
                        cfg.seed,
                        lane.lane,
                        cfg.windows,
                        cfg.window_packets,
                        pace_pps,
                    )?)),
                };
                // The sampler's seed fold is distinct from the source's
                // so selection never correlates with generation.
                let sampler_seed = cfg
                    .seed
                    .wrapping_add(0xc01_1ec7)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(u64::from(lane.lane));
                let sampler = cfg
                    .method
                    .build(Micros::ZERO, Some(effective as usize), 0, sampler_seed)
                    .map_err(|e| CollectError::Build(e.to_string()))?;
                let windower =
                    Windower::new(cfg.target, WindowSpec::Count(effective), None, sampler)
                        .with_flow_budget(cfg.lane_flow_budget);
                lane_states.push(LaneState {
                    lane,
                    feed,
                    windower,
                    evicted: 0,
                });
            }
            let label = shard.to_string();
            shards.push(Mutex::new(ShardState {
                lanes: lane_states,
                ingest: CounterShard::new(obskit::counter_labeled(
                    "collectd_shard_ingested_total",
                    &[("shard", &label)],
                )),
                shed_ctr: CounterShard::new(obskit::counter_labeled(
                    "collectd_shard_shed_total",
                    &[("shard", &label)],
                )),
            }));
        }
        obskit::gauge("collectd_routing_imbalance_x1000").set(plan.imbalance_x1000() as i64);
        obskit::gauge("collectd_shards").set(cfg.shards as i64);
        obskit::gauge("collectd_lanes").set(plan.lane_count() as i64);
        let evictions = vec![0u64; cfg.shards as usize];
        Ok(Collector {
            cfg,
            plan,
            shards,
            round: 0,
            windows: Vec::new(),
            lane_rounds: BTreeMap::new(),
            ingested: 0,
            considered: 0,
            shed: 0,
            selected: 0,
            max_live_flows: 0,
            max_shard_flows: 0,
            evictions,
            drained: false,
            deadline: None,
        })
    }

    /// The materialized routing.
    #[must_use]
    pub fn plan(&self) -> &RoutingPlan {
        &self.plan
    }

    /// Rounds completed so far.
    #[must_use]
    pub fn rounds_done(&self) -> u64 {
        self.round
    }

    /// Change the shard count. Legal only before the first round: state
    /// already sharded one way cannot be re-keyed without replay.
    ///
    /// # Errors
    /// [`CollectError::ShardMismatch`] once ingest has started,
    /// [`CollectError::NoShards`] for zero.
    pub fn reshard(&mut self, shards: u32) -> Result<(), CollectError> {
        if shards == 0 {
            return Err(CollectError::NoShards);
        }
        if self.round > 0 || self.drained {
            return Err(CollectError::ShardMismatch {
                expected: self.cfg.shards,
                got: shards,
            });
        }
        let mut cfg = self.cfg.clone();
        cfg.shards = shards;
        *self = Collector::new(cfg)?;
        Ok(())
    }

    /// Advance every shard one round (= one window) on `pool`,
    /// merge-by-index, publish telemetry, and return the round stats.
    ///
    /// # Errors
    /// [`CollectError::Finished`] when all configured windows are done
    /// or a drain deadline already fired; shard-task and decode errors
    /// otherwise.
    pub fn run_round(&mut self, pool: &Pool) -> Result<RoundStats, CollectError> {
        if self.round >= self.cfg.windows || self.drained {
            return Err(CollectError::Finished);
        }
        let window_packets = self.cfg.window_packets;
        let effective = self.cfg.effective_window();
        let deadline = self.deadline;
        let cells = &self.shards;
        let results: Vec<Result<ShardRound, CollectError>> = pool.run(self.shards.len(), |s| {
            let mut st = cells[s].lock().expect("shard lock");
            st.process_round(window_packets, effective, deadline)
        })?;
        // Merge strictly by shard index — parkit returns results in
        // task order, so this is deterministic at any job count.
        let mut stats = RoundStats {
            round: self.round,
            shard_flows: vec![0; self.shards.len()],
            shard_rss_kb: vec![0; self.shards.len()],
            shard_evictions: self.evictions.clone(),
            live_flows: 0,
            ingested: self.ingested,
            considered: self.considered,
            shed: self.shed,
            selected: self.selected,
            drained: false,
        };
        for (s, res) in results.into_iter().enumerate() {
            let mut sr = res?;
            for &(lane, ing, cons, shed) in &sr.lane_rounds {
                stats.ingested += ing;
                stats.considered += cons;
                stats.shed += shed;
                self.lane_rounds
                    .insert((self.round, lane), (ing, cons, shed));
                if ing < window_packets {
                    // A lane that could not produce a full window (drain
                    // deadline or an exhausted replay) ends the run.
                    stats.drained = true;
                }
            }
            stats.selected += sr.selected_delta;
            stats.shard_flows[s] = sr.live_flows;
            stats.shard_rss_kb[s] = sr.live_flows * FLOW_STATE_BYTES / 1024 + 1;
            self.evictions[s] += sr.evictions;
            stats.shard_evictions[s] = self.evictions[s];
            stats.live_flows += sr.live_flows;
            self.windows.append(&mut sr.windows);
        }
        self.ingested = stats.ingested;
        self.considered = stats.considered;
        self.shed = stats.shed;
        self.selected = stats.selected;
        self.max_live_flows = self.max_live_flows.max(stats.live_flows);
        self.max_shard_flows = self
            .max_shard_flows
            .max(stats.shard_flows.iter().copied().max().unwrap_or(0));
        self.drained = stats.drained;
        self.round += 1;
        publish_round(&stats);
        Ok(stats)
    }

    /// Flush every lane's partial window, merge all lane windows in
    /// `(window, lane)` order, and aggregate the per-tenant reports.
    ///
    /// # Errors
    /// Propagates a poisoned shard lock as [`CollectError::Pool`].
    pub fn finish(mut self) -> Result<CollectorOutput, CollectError> {
        for (s, cell) in self.shards.iter().enumerate() {
            let mut st = cell
                .lock()
                .map_err(|_| CollectError::Pool(format!("shard {s} lock poisoned")))?;
            for lane in &mut st.lanes {
                for payload in lane.windower.finish() {
                    lane.evicted += payload.evicted_flows;
                    self.windows.push(LaneWindow {
                        lane: lane.lane,
                        payload,
                    });
                }
            }
            st.ingest.flush();
            st.shed_ctr.flush();
        }
        // The merge key: window first, then the fleet's canonical lane
        // order — never shard or completion order.
        self.windows.sort_by_key(|w| (w.payload.index, w.lane.lane));
        let reports = build_reports(&self.cfg, &self.windows, &self.lane_rounds);
        let flows_reported: u64 = reports.iter().map(|r| r.flows).sum();
        let windows_completed = self
            .windows
            .iter()
            .map(|w| w.payload.index + 1)
            .max()
            .unwrap_or(0);
        let summary = CollectorSummary {
            shards: self.cfg.shards,
            tenants: self.cfg.fleet.tenants().len() as u32,
            interfaces: self.cfg.fleet.interfaces(),
            lanes: self.plan.lane_count(),
            method: self.cfg.method.name(),
            seed: self.cfg.seed,
            windows_configured: self.cfg.windows,
            windows_completed,
            window_packets: self.cfg.window_packets,
            ingested: self.ingested,
            considered: self.considered,
            shed: self.shed,
            selected: self.selected,
            flows_reported,
            evicted_flows: self.evictions.iter().sum(),
            max_live_flows: self.max_live_flows,
            max_shard_flows: self.max_shard_flows,
            routing_imbalance_x1000: self.plan.imbalance_x1000(),
            drained: self.drained,
        };
        Ok(CollectorOutput { reports, summary })
    }
}

impl ShardState {
    /// One round over this shard's lanes, ascending lane order.
    fn process_round(
        &mut self,
        window_packets: u64,
        effective: u64,
        deadline: Option<Instant>,
    ) -> Result<ShardRound, CollectError> {
        let mut out = ShardRound {
            windows: Vec::new(),
            lane_rounds: Vec::with_capacity(self.lanes.len()),
            live_flows: 0,
            evictions: 0,
            selected_delta: 0,
        };
        let mut chunk: Vec<PacketRecord> = Vec::with_capacity(CHUNK);
        for lane in &mut self.lanes {
            let selected_before = lane.windower.selected();
            let mut produced = 0u64;
            let mut offered = 0u64;
            let mut payload_count = 0usize;
            'gen: while produced < window_packets {
                if let Some(dl) = deadline {
                    if Instant::now() >= dl {
                        break 'gen;
                    }
                }
                let want = CHUNK.min((window_packets - produced) as usize);
                chunk.clear();
                let got = match &mut lane.feed {
                    Feed::Gen(g) => g.next_chunk(want, &mut chunk),
                    Feed::Replay(r) => {
                        let n = r.next_chunk(want, &mut chunk)?;
                        if n == 0 {
                            lane.feed = Feed::Dry;
                            break 'gen;
                        }
                        n
                    }
                    Feed::Dry => break 'gen,
                };
                produced += got as u64;
                // The lane queue admits a per-window prefix; the rest
                // of the arrivals shed before ever reaching the sampler.
                let room = (effective - offered).min(got as u64) as usize;
                if room > 0 {
                    for payload in lane.windower.offer_slice(&chunk[..room]) {
                        lane.evicted += payload.evicted_flows;
                        out.evictions += payload.evicted_flows;
                        out.live_flows += payload.flows;
                        payload_count += 1;
                        out.windows.push(LaneWindow {
                            lane: lane.lane,
                            payload,
                        });
                    }
                    offered += room as u64;
                }
            }
            let shed = produced - offered;
            self.ingest.add(produced);
            self.shed_ctr.add(shed);
            out.lane_rounds
                .push((lane.lane.lane, produced, offered, shed));
            out.selected_delta += lane.windower.selected() - selected_before;
            if payload_count == 0 {
                // Drained mid-window: the open table still holds flows.
                out.live_flows += lane.windower.live_flows();
            }
        }
        self.ingest.flush();
        self.shed_ctr.flush();
        Ok(out)
    }
}

/// Publish a round's statistics on the obskit registry — the
/// `collectd_*` surface the `--serve` plane exposes and the alert rules
/// watch.
fn publish_round(stats: &RoundStats) {
    for (s, (&flows, (&rss, &ev))) in stats
        .shard_flows
        .iter()
        .zip(stats.shard_rss_kb.iter().zip(stats.shard_evictions.iter()))
        .enumerate()
    {
        let label = s.to_string();
        let lbl: &[(&str, &str)] = &[("shard", &label)];
        obskit::gauge_labeled("collectd_shard_flows", lbl).set(flows as i64);
        obskit::gauge_labeled("collectd_shard_rss_kb", lbl).set(rss as i64);
        obskit::gauge_labeled("collectd_shard_evictions", lbl).set(ev as i64);
    }
    obskit::gauge("collectd_live_flows").set(stats.live_flows as i64);
    obskit::gauge("collectd_rounds_done").set((stats.round + 1) as i64);
    obskit::gauge("collectd_shed_total").set(stats.shed as i64);
    obskit::counter("collectd_rounds_total").inc();
}

/// Aggregate sorted lane windows into per-(window, tenant) reports.
fn build_reports(
    cfg: &CollectorConfig,
    windows: &[LaneWindow],
    lane_rounds: &BTreeMap<(u64, u32), (u64, u64, u64)>,
) -> Vec<TenantWindowReport> {
    let k = cfg.inversion_interval();
    let mut reports = Vec::new();
    let mut i = 0;
    while i < windows.len() {
        let win = windows[i].payload.index;
        let tenant = windows[i].lane.tenant;
        let mut j = i;
        while j < windows.len()
            && windows[j].payload.index == win
            && windows[j].lane.tenant == tenant
        {
            j += 1;
        }
        let group = &windows[i..j];
        i = j;

        let first = &group[0].payload;
        let mut population = first.population.clone();
        let mut sample = first.sample.clone();
        let mut packets = first.packets;
        let mut selected = first.selected;
        let mut flows = first.flows;
        let mut syn_flows = first.syn_flows;
        let mut evicted = first.evicted_flows;
        let mut sampled_sizes = first.sampled_sizes.clone();
        let mut sampled_syn = first.sampled_syn_flows;
        for w in &group[1..] {
            population.merge(&w.payload.population);
            sample.merge(&w.payload.sample);
            packets += w.payload.packets;
            selected += w.payload.selected;
            flows += w.payload.flows;
            syn_flows += w.payload.syn_flows;
            evicted += w.payload.evicted_flows;
            sampled_sizes.extend_from_slice(&w.payload.sampled_sizes);
            sampled_syn += w.payload.sampled_syn_flows;
        }
        let phi = sampling::disparity(&population, &sample).map(|d| d.phi);
        let (est_naive, est_tail, est_syn) = match k {
            Some(k) => (
                naive_scaling(&sampled_sizes, k).ok().map(|e| e.total_flows),
                tail_rescale(&sampled_sizes, k).ok().map(|e| e.total_flows),
                syn_flow_count(sampled_syn, k).ok(),
            ),
            None => (None, None, None),
        };
        let shed: u64 = group
            .iter()
            .map(|w| {
                lane_rounds
                    .get(&(win, w.lane.lane))
                    .map_or(0, |&(_, _, s)| s)
            })
            .sum();
        reports.push(TenantWindowReport {
            window: win,
            tenant: cfg.fleet.tenant_name(tenant).to_string(),
            lanes: group.len() as u32,
            packets,
            selected,
            shed,
            flows,
            syn_flows,
            evicted_flows: evicted,
            phi,
            sampled_flows: sampled_sizes.len() as u64,
            sampled_syn_flows: sampled_syn,
            est_flows_naive: est_naive,
            est_flows_tail: est_tail,
            est_syn_flows: est_syn,
        });
    }
    reports
}

/// Run a full collector lifecycle: construct, round loop, finish.
/// `observer` sees every round's stats (the CLI hooks rule evaluation
/// and progress lines here).
///
/// # Errors
/// Any [`CollectError`] from construction, rounds, or the merge.
pub fn run_collector(
    cfg: CollectorConfig,
    pool: &Pool,
    deadline: Option<Instant>,
    mut observer: impl FnMut(&RoundStats),
) -> Result<CollectorOutput, CollectError> {
    let mut collector = Collector::new(cfg)?;
    collector.deadline = deadline;
    loop {
        match collector.run_round(pool) {
            Ok(stats) => {
                let done = stats.drained;
                observer(&stats);
                if done {
                    break;
                }
            }
            Err(CollectError::Finished) => break,
            Err(e) => return Err(e),
        }
    }
    collector.finish()
}
