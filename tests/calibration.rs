//! Integration test: the synthetic SDSC hour reproduces the paper's
//! published population statistics (Tables 2 and 3).
//!
//! The quantile targets are asserted *exactly* (they are structural:
//! atoms at 40/76/552 bytes, the 400 µs interarrival grid); moments are
//! asserted within bands. See EXPERIMENTS.md for the measured values.

use netsample::netsynth;
use nettrace::PerSecondSeries;
use statkit::SummaryRow;
use std::sync::OnceLock;

fn hour() -> &'static nettrace::Trace {
    static TRACE: OnceLock<nettrace::Trace> = OnceLock::new();
    TRACE.get_or_init(|| netsynth::sdsc_hour(1993))
}

fn within(measured: f64, target: f64, rel: f64) {
    assert!(
        (measured - target).abs() / target.abs() <= rel,
        "measured {measured} vs target {target} (allowed ±{}%)",
        rel * 100.0
    );
}

#[test]
fn population_size_near_paper() {
    // Paper: "1.63 million packets". (Its own Table 2 mean of 424.2 pps
    // over 3600 s implies 1.527M; we target the per-second statistics.)
    let n = hour().len() as f64;
    assert!(n > 1.40e6 && n < 1.70e6, "population {n}");
}

#[test]
fn table3_packet_size_quantiles_exact() {
    let sizes: Vec<f64> = hour().sizes().iter().map(|&s| f64::from(s)).collect();
    let row = SummaryRow::from_data(&sizes);
    assert_eq!(row.min, 28.0);
    assert_eq!(row.p5, 40.0);
    assert_eq!(row.q1, 40.0);
    assert_eq!(row.median, 76.0);
    assert_eq!(row.q3, 552.0);
    assert_eq!(row.p95, 552.0);
    assert_eq!(row.max, 1500.0);
}

#[test]
fn table3_packet_size_moments() {
    let sizes: Vec<f64> = hour().sizes().iter().map(|&s| f64::from(s)).collect();
    let row = SummaryRow::from_data(&sizes);
    within(row.mean, 232.0, 0.02);
    within(row.std_dev, 236.0, 0.03);
}

#[test]
fn table3_interarrival_quantiles_exact() {
    let ia: Vec<f64> = hour().interarrivals().iter().map(|&x| x as f64).collect();
    let row = SummaryRow::from_data(&ia);
    // min and 5% are "< 400" in the paper: zero ticks of the 400us clock.
    assert_eq!(row.min, 0.0);
    assert_eq!(row.p5, 0.0);
    assert_eq!(row.q1, 400.0);
    assert_eq!(row.median, 1600.0);
    assert_eq!(row.q3, 3200.0);
    assert_eq!(row.p95, 7600.0);
    // All values sit on the 400us capture grid.
    assert!(hour().interarrivals().iter().all(|&g| g % 400 == 0));
}

#[test]
fn table3_interarrival_moments() {
    let ia: Vec<f64> = hour().interarrivals().iter().map(|&x| x as f64).collect();
    let row = SummaryRow::from_data(&ia);
    within(row.mean, 2358.0, 0.02);
    within(row.std_dev, 2734.0, 0.05);
}

#[test]
fn table2_per_second_rates() {
    let s = PerSecondSeries::from_trace(hour());
    let row = SummaryRow::from_data(&s.packet_rates());
    within(row.mean, 424.2, 0.02);
    within(row.std_dev, 85.1, 0.08);
    within(row.q1, 364.0, 0.03);
    within(row.median, 412.0, 0.03);
    within(row.q3, 473.0, 0.03);
    assert!(row.skew > 0.4 && row.skew < 1.6, "skew {}", row.skew);
    assert!(row.kurtosis > 3.0, "kurtosis {}", row.kurtosis);
    // Extremes within a factor-ish of the paper's single draw.
    assert!(row.min > 100.0 && row.min < 250.0, "min {}", row.min);
    assert!(row.max > 700.0 && row.max < 1300.0, "max {}", row.max);
}

#[test]
fn table2_byte_rates() {
    let s = PerSecondSeries::from_trace(hour());
    let row = SummaryRow::from_data(&s.kilobyte_rates());
    within(row.mean, 98.6, 0.03);
    within(row.std_dev, 38.6, 0.10);
    // Bytes skew harder than packets (bursts are bulk transfers).
    let pps_skew = SummaryRow::from_data(&s.packet_rates()).skew;
    assert!(
        row.skew > pps_skew,
        "byte skew {} vs pps skew {pps_skew}",
        row.skew
    );
}

#[test]
fn table2_mean_size_distribution() {
    let s = PerSecondSeries::from_trace(hour());
    let row = SummaryRow::from_data(&s.mean_sizes());
    within(row.mean, 226.2, 0.02);
    within(row.std_dev, 50.5, 0.10);
    within(row.median, 222.0, 0.05);
    assert!(row.min > 60.0 && row.min < 110.0, "min {}", row.min);
    assert!(row.max > 330.0 && row.max < 450.0, "max {}", row.max);
}

#[test]
fn consistency_between_tables() {
    // The identities the paper's own numbers satisfy.
    let stats = hour().stats();
    within(stats.mean_pps() * stats.mean_size() / 1000.0, 98.6, 0.04);
    within(1e6 / stats.mean_pps(), 2358.0, 0.03);
}

#[test]
fn different_seeds_hold_calibration() {
    // The calibration is a property of the generator, not of one lucky
    // seed: check the two structural quantile anchors on another seed.
    let other = netsynth::sdsc_hour(7);
    let sizes: Vec<f64> = other.sizes().iter().map(|&s| f64::from(s)).collect();
    let row = SummaryRow::from_data(&sizes);
    assert_eq!(row.median, 76.0);
    assert_eq!(row.q3, 552.0);
    let ia: Vec<f64> = other.interarrivals().iter().map(|&x| x as f64).collect();
    let row = SummaryRow::from_data(&ia);
    assert_eq!(row.median, 1600.0);
}
