//! Integration tests: the full operational pipeline — synthesis →
//! pcap file → backbone collection → sampled characterization —
//! is self-consistent across crate boundaries.

use netsample::netstat::{Backbone, CollectorNode, ObjectSet};
use netsample::netsynth;
use netsample::sampling::{select_indices, MethodSpec, Target};
use nettrace::pcap::{read_pcap, write_pcap};
use nettrace::{Micros, PerSecondSeries, Trace};

fn minute() -> Trace {
    netsynth::generate(&netsynth::TraceProfile::short(60), 4242)
}

#[test]
fn pcap_roundtrip_preserves_analysis() {
    let trace = minute();
    let mut buf = Vec::new();
    write_pcap(&mut buf, &trace).unwrap();
    let back = read_pcap(buf.as_slice()).unwrap();
    assert_eq!(back.len(), trace.len());
    // Every characterization target sees identical distributions.
    for target in Target::all() {
        let a = target.population_histogram(trace.packets());
        let b = target.population_histogram(back.packets());
        assert_eq!(a.counts(), b.counts(), "{target}");
    }
    // Per-second series identical too.
    assert_eq!(
        PerSecondSeries::from_trace(&trace),
        PerSecondSeries::from_trace(&back)
    );
}

#[test]
fn unsampled_node_objects_match_population() {
    let trace = minute();
    let mut node = CollectorNode::new(ObjectSet::T1, u64::MAX / 2);
    for p in trace.iter() {
        node.offer(p);
    }
    let o = node.objects();
    assert_eq!(o.protocols.total_packets(), trace.len() as u64);
    assert_eq!(o.transit.packets, trace.len() as u64);
    assert_eq!(o.transit.bytes, trace.total_bytes());
    assert_eq!(o.matrix.total_packets(), trace.len() as u64);
    assert_eq!(o.lengths.total(), trace.len() as u64);
}

#[test]
fn sampled_node_estimates_population_objects() {
    // A 1-in-50 node's scaled object counts approximate the unsampled
    // truth (the whole premise of the T3 pipeline).
    let trace = minute();
    let mut truth = CollectorNode::new(ObjectSet::T3, u64::MAX / 2);
    let mut sampled = CollectorNode::new(ObjectSet::T3, u64::MAX / 2);
    sampled.deploy_sampling(50);
    for p in trace.iter() {
        truth.offer(p);
        sampled.offer(p);
    }
    let t = truth.objects().protocols.tcp.packets as f64;
    let e = sampled.objects().protocols.tcp.scaled(50).packets as f64;
    assert!((e - t).abs() / t < 0.05, "TCP estimate {e} vs truth {t}");

    let t_udp = truth.objects().protocols.udp.packets as f64;
    let e_udp = sampled.objects().protocols.udp.scaled(50).packets as f64;
    assert!(
        (e_udp - t_udp).abs() / t_udp < 0.15,
        "UDP estimate {e_udp} vs truth {t_udp}"
    );
}

#[test]
fn backbone_conserves_and_estimates() {
    let trace = minute();
    let mut nodes = vec![
        CollectorNode::new(ObjectSet::T3, u64::MAX / 2),
        CollectorNode::new(ObjectSet::T3, u64::MAX / 2),
    ];
    for n in &mut nodes {
        n.deploy_sampling(50);
    }
    let mut bb = Backbone::new(nodes, Micros::from_secs(15));
    let cycles = bb.run_trace(&trace, |p| usize::from(p.dst_net % 2 == 0));
    let snmp_total: u64 = cycles.iter().map(|c| c.snmp_packets()).sum();
    assert_eq!(snmp_total, trace.len() as u64, "SNMP conserves packets");
    let est_total: u64 = cycles.iter().map(|c| c.estimated_packets()).sum();
    let rel = (est_total as f64 - snmp_total as f64).abs() / snmp_total as f64;
    assert!(rel < 0.02, "estimate off by {rel}");
}

#[test]
fn overloaded_node_loses_categorization_until_sampled() {
    let trace = minute(); // ~420 pps
    let mut overloaded = CollectorNode::new(ObjectSet::T3, 100);
    for p in trace.iter() {
        overloaded.offer(p);
    }
    let r = overloaded.collect();
    assert!(r.discrepancy() > 0.5, "discrepancy {}", r.discrepancy());

    let mut fixed = CollectorNode::new(ObjectSet::T3, 100);
    fixed.deploy_sampling(50);
    for p in trace.iter() {
        fixed.offer(p);
    }
    let r = fixed.collect();
    assert!(r.discrepancy() < 0.02, "discrepancy {}", r.discrepancy());
    assert_eq!(r.missed, 0);
}

#[test]
fn sample_from_pcap_sourced_trace() {
    // File-driven sampling: write, read, sample, score — the real-trace
    // workflow.
    let trace = minute();
    let mut buf = Vec::new();
    write_pcap(&mut buf, &trace).unwrap();
    let back = read_pcap(buf.as_slice()).unwrap();
    let packets = back.packets();
    let mut sampler =
        MethodSpec::Systematic { interval: 50 }.build(packets.len(), Micros::ZERO, 0, 0);
    let selected = select_indices(sampler.as_mut(), packets);
    assert_eq!(selected.len(), packets.len().div_ceil(50));
    let pop = Target::PacketSize.population_histogram(packets);
    let sam = Target::PacketSize.sample_histogram(packets, &selected);
    let report = netsample::sampling::disparity(&pop, &sam).unwrap();
    assert!(report.phi < 0.1, "phi {}", report.phi);
}

#[test]
fn windows_compose_with_collection_cycles() {
    // Slicing the trace into 15 s windows and summing per-window object
    // totals equals whole-trace totals.
    let trace = minute();
    let mut total = 0u64;
    let mut from = Micros::ZERO;
    while from < Micros::from_secs(60) {
        let to = from + Micros::from_secs(15);
        total += trace.window(from, to).len() as u64;
        from = to;
    }
    assert_eq!(total, trace.len() as u64);
}
