//! Calibration battery for the flow-statistics inversion suite.
//!
//! Ground truth is synthetic: `netsynth::generate_flow_pack` draws
//! parent flow sizes from a *geometric* distribution (the calibration
//! shape — closed-form sampled expectations, mass at every small size,
//! so the estimators' small-flow corrections are actually exercised).
//! The pack is sampled 1-in-k systematically, aggregated back into
//! sampled flows, and each estimator is scored against the true parent
//! flow population on both axes it must recover:
//!
//! * **shape** — φ between the estimated and true flow-size histograms
//!   (proportions, so scale-invariant), and
//! * **count** — `|N̂/N − 1|`, the relative error of the estimated
//!   total parent flow count.
//!
//! The battery's scalar *recovery error* is their sum. Both terms are
//! needed: φ alone cannot see the flows sampling missed (naive scaling
//! under-counts by the whole undetected mass yet its φ barely moves),
//! and the count alone cannot see a wrong size mixture. See
//! EXPERIMENTS.md for the estimator formulas and this protocol.
//!
//! Pinned per interval k ∈ {10, 50, 100} on the geometric pack:
//!
//! * every estimator's recovery error stays under a seeded ceiling, and
//! * more modeling never hurts: err(EM) ≤ err(tail-rescale) ≤
//!   err(naive) — tail rescaling repairs the count naive loses, EM
//!   additionally repairs the shape.
//!
//! A Zipf pack cross-checks the heavy-tailed case (φ(EM) ≤ φ(naive)
//! once sampling is sparse), the SYN counter must land near the true
//! flow count, and the whole battery is bit-identical across runs —
//! the property the CI `flows` stage byte-diffs end to end.

use netsample::netsynth::{generate_flow_pack, FlowPackConfig, FlowSizeDist};
use netsample::sampling::{FlowEstimator, FlowExperiment};
use nettrace::Trace;
use std::sync::OnceLock;

const SEED: u64 = 1993;
const REPLICATIONS: u32 = 3;
const INTERVALS: [u64; 3] = [10, 50, 100];

/// 2000 geometric(p = 0.02) flows — mean parent size 50 packets, so
/// every k in the battery leaves plenty of mass below the sampling
/// interval where the estimators disagree most.
fn geometric_pack() -> &'static Trace {
    static PACK: OnceLock<Trace> = OnceLock::new();
    PACK.get_or_init(|| {
        generate_flow_pack(
            &FlowPackConfig {
                flows: 2_000,
                size_dist: FlowSizeDist::Geometric { p: 0.02 },
                duration_secs: 60,
                ..FlowPackConfig::default()
            },
            SEED,
        )
    })
}

fn zipf_pack() -> &'static Trace {
    static PACK: OnceLock<Trace> = OnceLock::new();
    PACK.get_or_init(|| {
        generate_flow_pack(
            &FlowPackConfig {
                flows: 2_000,
                duration_secs: 60,
                ..FlowPackConfig::default()
            },
            SEED,
        )
    })
}

/// Mean shape disparity φ over the battery's replications.
fn mean_phi(exp: &FlowExperiment, est: FlowEstimator, k: u64) -> f64 {
    let result = exp.run(est, k, REPLICATIONS);
    assert_eq!(
        result.unscored, 0,
        "{est} at k={k}: {} replications failed to score",
        result.unscored
    );
    result.mean_phi().expect("scored replications exist")
}

/// Recovery error: shape φ plus relative flow-count error.
fn recovery_error(exp: &FlowExperiment, est: FlowEstimator, k: u64) -> f64 {
    let result = exp.run(est, k, REPLICATIONS);
    assert_eq!(result.unscored, 0, "{est} at k={k} failed to score");
    let phi = result.mean_phi().expect("scored replications exist");
    let count = result
        .mean_estimated_flows()
        .expect("scored replications exist");
    let truth = exp.true_flows() as f64;
    phi + (count / truth - 1.0).abs()
}

#[test]
fn every_estimator_recovers_the_geometric_parent() {
    let exp = FlowExperiment::new(geometric_pack().packets());
    // Seeded ceilings (measured worst case is at k = 100, with ~7%
    // headroom), tightest for the estimator with the most model: naive
    // scaling loses the whole undetected mass, tail rescaling restores
    // the count but not the shape, EM restores both.
    for (est, ceiling) in [
        (FlowEstimator::Naive, 1.85),
        (FlowEstimator::TailRescale, 1.65),
        (FlowEstimator::Em, 0.85),
    ] {
        for k in INTERVALS {
            let err = recovery_error(&exp, est, k);
            assert!(
                err <= ceiling,
                "{est} at k={k}: recovery error {err} exceeds calibrated ceiling {ceiling}"
            );
        }
    }
}

#[test]
fn more_modeling_never_hurts() {
    let exp = FlowExperiment::new(geometric_pack().packets());
    for k in INTERVALS {
        let naive = recovery_error(&exp, FlowEstimator::Naive, k);
        let tail = recovery_error(&exp, FlowEstimator::TailRescale, k);
        let em = recovery_error(&exp, FlowEstimator::Em, k);
        assert!(
            em <= tail,
            "k={k}: EM error {em} exceeds tail-rescale error {tail}"
        );
        assert!(
            tail <= naive,
            "k={k}: tail-rescale error {tail} exceeds naive error {naive}"
        );
    }
}

#[test]
fn em_beats_naive_on_the_heavy_tailed_pack() {
    // Once sampling is sparse (k ≥ 50 against Zipf sizes), the EM
    // mixture recovers a better shape than rescaled observations; at
    // k = 10 most flows are multiply sampled and naive is already
    // close, so the battery pins the sparse regime the paper's
    // methodology targets.
    let exp = FlowExperiment::new(zipf_pack().packets());
    for k in [50u64, 100] {
        let naive = mean_phi(&exp, FlowEstimator::Naive, k);
        let em = mean_phi(&exp, FlowEstimator::Em, k);
        assert!(em <= naive, "zipf k={k}: EM phi {em} vs naive {naive}");
    }
}

#[test]
fn syn_counting_recovers_the_true_flow_count() {
    let exp = FlowExperiment::new(geometric_pack().packets());
    let truth = exp.true_flows() as f64;
    for k in INTERVALS {
        let result = exp.run(FlowEstimator::Naive, k, REPLICATIONS);
        let syn = result
            .mean_syn_estimate()
            .expect("scored replications exist");
        assert!(
            (syn - truth).abs() / truth <= 0.25,
            "k={k}: SYN estimate {syn} vs {truth} true flows"
        );
    }
}

#[test]
fn the_battery_is_bit_identical_across_runs() {
    let exp = FlowExperiment::new(geometric_pack().packets());
    for est in FlowEstimator::all() {
        let a = exp.run(est, 50, REPLICATIONS);
        let b = exp.run(est, 50, REPLICATIONS);
        assert_eq!(a.phi_values(), b.phi_values(), "{est} diverged");
        assert_eq!(a.mean_estimated_flows(), b.mean_estimated_flows());
        assert_eq!(a.mean_syn_estimate(), b.mean_syn_estimate());
    }
}
