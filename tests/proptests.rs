//! Property-based tests (proptest) over the core data structures and
//! invariants, spanning all workspace crates.

use netsample::sampling::{
    disparity, select_indices, MethodSpec, SimpleRandomSampler, StratifiedSampler,
    SystematicSampler, Target,
};
use nettrace::pcap::{read_pcap, write_pcap};
use nettrace::{
    BinSpec, ClockModel, FlowKey, FlowTable, Histogram, Micros, PacketRecord, Protocol, Trace,
};
use proptest::prelude::*;
use statkit::{quantile, Moments};

/// Strategy: an ordered packet stream with realistic field ranges.
/// Roughly half the packets carry a synthetic flow id (0 = unassigned,
/// falling back to 5-tuple keying); the first packet seen per flow id
/// gets the SYN bit, as the flow generators would set it.
fn packet_stream(max_len: usize) -> impl Strategy<Value = Vec<PacketRecord>> {
    prop::collection::vec(
        (
            0u64..5_000u64,  // gap to previous packet (us)
            28u16..=1500u16, // size
            0u8..=20u8,      // protocol number (covers TCP/UDP/ICMP/other)
            0u16..=1024u16,  // src port
            0u16..=1024u16,  // dst port
            0u16..=300u16,   // src net
            0u16..=300u16,   // dst net
            0u32..=40u32,    // flow id (0 = unassigned)
        ),
        1..max_len,
    )
    .prop_map(|rows| {
        let mut t = 0u64;
        let mut seen_flows = std::collections::BTreeSet::new();
        rows.into_iter()
            .map(|(gap, size, proto, sp, dp, sn, dn, flow)| {
                t += gap;
                let first = flow != 0 && seen_flows.insert(flow);
                let mut p = PacketRecord {
                    timestamp: Micros(t),
                    size,
                    protocol: Protocol::from_number(proto),
                    src_port: sp,
                    dst_port: dp,
                    src_net: sn,
                    dst_net: dn,
                    flow_id: 0,
                    flags: 0,
                };
                if flow != 0 {
                    p = p.with_flow(flow, first);
                }
                p
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn trace_construction_accepts_ordered_streams(pkts in packet_stream(200)) {
        let trace = Trace::new(pkts.clone()).expect("ordered by construction");
        prop_assert_eq!(trace.len(), pkts.len());
        // Interarrivals are nonnegative and consistent with timestamps.
        let ia = trace.interarrivals();
        prop_assert_eq!(ia.len(), pkts.len().saturating_sub(1));
        for (i, g) in ia.iter().enumerate() {
            prop_assert_eq!(
                *g,
                pkts[i + 1].timestamp.as_u64() - pkts[i].timestamp.as_u64()
            );
        }
    }

    #[test]
    fn windows_partition_the_trace(pkts in packet_stream(200), cut in 0u64..1_000_000u64) {
        let trace = Trace::new(pkts).unwrap();
        let end = trace.end().unwrap() + Micros(1);
        let left = trace.window(Micros::ZERO, Micros(cut));
        let right = trace.window(Micros(cut), end);
        prop_assert_eq!(left.len() + right.len(), trace.len());
    }

    #[test]
    fn pcap_roundtrip_is_lossless(pkts in packet_stream(100)) {
        let trace = Trace::new(pkts).unwrap();
        let mut buf = Vec::new();
        write_pcap(&mut buf, &trace).unwrap();
        let back = read_pcap(buf.as_slice()).unwrap();
        prop_assert_eq!(back.len(), trace.len());
        for (a, b) in trace.iter().zip(back.iter()) {
            prop_assert_eq!(a.timestamp, b.timestamp);
            prop_assert_eq!(a.size, b.size);
            prop_assert_eq!(a.protocol, b.protocol);
            prop_assert_eq!(a.src_net, b.src_net);
            prop_assert_eq!(a.dst_net, b.dst_net);
            prop_assert_eq!(a.flow_id, b.flow_id);
            prop_assert_eq!(a.flags, b.flags);
        }
    }

    #[test]
    fn clock_quantization_is_monotone_floor(tick in 1u64..10_000, ts in 0u64..10_000_000) {
        let clock = ClockModel::new(tick);
        let q = clock.quantize(Micros(ts)).as_u64();
        prop_assert!(q <= ts);
        prop_assert!(ts - q < tick);
        prop_assert_eq!(q % tick, 0);
        // Monotone.
        let q2 = clock.quantize(Micros(ts + 1)).as_u64();
        prop_assert!(q2 >= q);
    }

    #[test]
    fn systematic_sample_size_formula(
        n in 1usize..500, k in 1usize..60, offset_raw in 0usize..60
    ) {
        let offset = offset_raw % k;
        let pkts: Vec<PacketRecord> =
            (0..n).map(|i| PacketRecord::new(Micros(i as u64), 40)).collect();
        let mut s = SystematicSampler::with_offset(k, offset);
        let sel = select_indices(&mut s, &pkts);
        prop_assert_eq!(sel.len(), n.saturating_sub(offset).div_ceil(k));
        // Selected indices are exactly offset + j*k.
        for (j, &i) in sel.iter().enumerate() {
            prop_assert_eq!(i, offset + j * k);
        }
    }

    #[test]
    fn stratified_selects_one_per_full_bucket(
        n in 1usize..500, k in 1usize..60, seed in 0u64..1000
    ) {
        let pkts: Vec<PacketRecord> =
            (0..n).map(|i| PacketRecord::new(Micros(i as u64), 40)).collect();
        let mut s = StratifiedSampler::new(k, seed);
        let sel = select_indices(&mut s, &pkts);
        let full_buckets = n / k;
        prop_assert!(sel.len() >= full_buckets);
        prop_assert!(sel.len() <= full_buckets + 1);
        for (b, &i) in sel.iter().enumerate().take(full_buckets) {
            prop_assert!(i >= b * k && i < (b + 1) * k);
        }
    }

    #[test]
    fn algorithm_s_selects_exactly_n(
        pop in 1usize..500, frac in 0.01f64..1.0, seed in 0u64..1000
    ) {
        let n = ((pop as f64 * frac) as usize).clamp(1, pop);
        let pkts: Vec<PacketRecord> =
            (0..pop).map(|i| PacketRecord::new(Micros(i as u64), 40)).collect();
        let mut s = SimpleRandomSampler::new(pop, n, seed);
        let sel = select_indices(&mut s, &pkts);
        prop_assert_eq!(sel.len(), n);
        // Strictly increasing (each index at most once).
        prop_assert!(sel.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn full_sample_has_zero_phi(pkts in packet_stream(300)) {
        for target in [Target::PacketSize, Target::Protocol, Target::Port] {
            let pop = target.population_histogram(&pkts);
            let all: Vec<usize> = (0..pkts.len()).collect();
            let sam = target.sample_histogram(&pkts, &all);
            let r = disparity(&pop, &sam).unwrap();
            prop_assert!(r.phi.abs() < 1e-12);
            prop_assert!(r.chi2.abs() < 1e-9);
            prop_assert!(r.cost.abs() < 1e-6);
        }
    }

    #[test]
    fn disparity_metrics_are_nonnegative(
        pkts in packet_stream(300), k in 2usize..50, seed in 0u64..100
    ) {
        let spec = MethodSpec::StratifiedRandom { bucket: k };
        let mut sampler = spec.build(pkts.len(), pkts[0].timestamp, 0, seed);
        let sel = select_indices(sampler.as_mut(), &pkts);
        let pop = Target::PacketSize.population_histogram(&pkts);
        let sam = Target::PacketSize.sample_histogram(&pkts, &sel);
        if let Some(r) = disparity(&pop, &sam) {
            prop_assert!(r.chi2 >= 0.0);
            prop_assert!(r.phi >= 0.0);
            prop_assert!(r.cost >= 0.0);
            prop_assert!(r.x2 >= 0.0);
            prop_assert!((0.0..=1.0).contains(&r.significance));
            prop_assert!(r.fraction > 0.0 && r.fraction <= 1.0);
        }
    }

    #[test]
    fn histogram_conserves_observations(values in prop::collection::vec(0u64..4000, 1..500)) {
        let spec = BinSpec::paper_interarrival();
        let h = Histogram::from_values(spec, values.iter().copied());
        prop_assert_eq!(h.total(), values.len() as u64);
        prop_assert_eq!(h.counts().iter().sum::<u64>(), values.len() as u64);
        let props = h.proportions();
        prop_assert!((props.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn moments_merge_matches_single_pass(
        xs in prop::collection::vec(-1e3f64..1e3, 2..300), split in 1usize..299
    ) {
        let split = split.min(xs.len() - 1);
        let whole = Moments::from_values(xs.iter().copied());
        let mut left = Moments::from_values(xs[..split].iter().copied());
        let right = Moments::from_values(xs[split..].iter().copied());
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-6);
    }

    #[test]
    fn quantiles_are_bounded_and_monotone(
        xs in prop::collection::vec(-1e6f64..1e6, 1..200)
    ) {
        let min = xs.iter().cloned().fold(f64::MAX, f64::min);
        let max = xs.iter().cloned().fold(f64::MIN, f64::max);
        let mut last = f64::NEG_INFINITY;
        for i in 0..=10 {
            let q = quantile(&xs, i as f64 / 10.0);
            prop_assert!(q >= min - 1e-9 && q <= max + 1e-9);
            prop_assert!(q >= last);
            last = q;
        }
    }

    #[test]
    fn timer_sampler_selection_bounded_by_schedule(
        pkts in packet_stream(300), period in 1_000u64..100_000
    ) {
        let spec = MethodSpec::SystematicTimer { period: Micros(period) };
        let mut s = spec.build(pkts.len(), pkts[0].timestamp, 0, 0);
        let sel = select_indices(s.as_mut(), &pkts);
        let duration = pkts.last().unwrap().timestamp.as_u64()
            - pkts[0].timestamp.as_u64();
        // At most one selection per period, plus the initial firing.
        prop_assert!(sel.len() as u64 <= duration / period + 1);
        prop_assert!(!sel.is_empty(), "first firing is at the window start");
    }

    #[test]
    fn byte_volume_totals_equal_byte_sums(pkts in packet_stream(300)) {
        let h = Target::ByteVolume.population_histogram(&pkts);
        let bytes: u64 = pkts.iter().map(|p| u64::from(p.size)).sum();
        prop_assert_eq!(h.total(), bytes);
        // Packet-count and byte views agree on emptiness per bin.
        let counts = Target::PacketSize.population_histogram(&pkts);
        for (c, b) in counts.counts().iter().zip(h.counts()) {
            prop_assert_eq!(*c == 0, *b == 0);
        }
    }

    #[test]
    fn adaptive_sampler_respects_interval_bounds(
        pkts in packet_stream(500),
        budget in 1u32..50,
        initial in 1usize..64,
    ) {
        use netsample::sampling::adaptive::{AdaptiveConfig, AdaptiveSampler};
        let config = AdaptiveConfig {
            budget_per_period: budget,
            min_interval: 1,
            max_interval: 64,
            ..AdaptiveConfig::default()
        };
        let mut s = AdaptiveSampler::new(initial.clamp(1, 64), config);
        for p in &pkts {
            let _ = netsample::sampling::Sampler::offer(&mut s, p);
            prop_assert!((1..=64).contains(&s.current_interval()));
        }
    }

    #[test]
    fn merge_conserves_and_orders(
        a in packet_stream(150),
        b in packet_stream(150),
    ) {
        use nettrace::merge::merge;
        let ta = Trace::new(a).unwrap();
        let tb = Trace::new(b).unwrap();
        let m = merge(&[&ta, &tb]);
        prop_assert_eq!(m.len(), ta.len() + tb.len());
        prop_assert!(m
            .packets()
            .windows(2)
            .all(|w| w[0].timestamp <= w[1].timestamp));
        prop_assert_eq!(m.total_bytes(), ta.total_bytes() + tb.total_bytes());
    }

    #[test]
    fn flow_generator_structural_invariants(seed in 0u64..50) {
        use netsample::netsynth::flows::{generate_flows, FlowProfile};
        let t = generate_flows(
            &FlowProfile {
                duration_secs: 5,
                ..FlowProfile::default()
            },
            seed,
        );
        prop_assert!(t.packets().windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
        prop_assert!(t.iter().all(|p| (28..=1500).contains(&p.size)));
        prop_assert!(t.iter().all(|p| p.timestamp.as_u64() < 5_000_000));
        prop_assert!(t.iter().all(|p| p.timestamp.as_u64() % 400 == 0));
    }

    #[test]
    fn pcap_reader_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        // Robustness: arbitrary input must produce Ok or Err, never a
        // panic (the reader faces untrusted files).
        let _ = read_pcap(bytes.as_slice());
    }

    #[test]
    fn pcapng_reader_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        let _ = nettrace::pcapng::read_pcapng(bytes.as_slice());
        let _ = nettrace::read_capture(bytes.as_slice());
    }

    #[test]
    fn readers_never_panic_on_corrupted_valid_stream(
        pkts in packet_stream(20),
        flips in prop::collection::vec((0usize..2000, any::<u8>()), 1..8),
    ) {
        // Take a valid stream and corrupt random bytes: still no panic.
        let trace = Trace::new(pkts).unwrap();
        let mut buf = Vec::new();
        write_pcap(&mut buf, &trace).unwrap();
        for (pos, val) in flips {
            if !buf.is_empty() {
                let i = pos % buf.len();
                buf[i] = val;
            }
        }
        let _ = read_pcap(buf.as_slice());
        let _ = nettrace::read_capture(buf.as_slice());
    }

    #[test]
    fn flow_table_matches_reference_grouping(pkts in packet_stream(200)) {
        // An unbounded table is exactly a one-shot grouping by FlowKey.
        let table = FlowTable::from_packets(usize::MAX, &pkts);
        let mut reference: std::collections::BTreeMap<FlowKey, (u64, u64, bool)> =
            std::collections::BTreeMap::new();
        for p in &pkts {
            let e = reference.entry(FlowKey::of(p)).or_insert((0, 0, false));
            e.0 += 1;
            e.1 += u64::from(p.size);
            e.2 |= p.syn();
        }
        prop_assert_eq!(table.len(), reference.len());
        prop_assert_eq!(table.evicted_flows(), 0);
        for (key, rec) in table.flows() {
            let &(packets, bytes, syn) = reference.get(key).expect("key in reference");
            prop_assert_eq!(rec.packets, packets);
            prop_assert_eq!(rec.bytes, bytes);
            prop_assert_eq!(rec.syn_seen, syn);
            prop_assert!(rec.first_ts <= rec.last_ts);
        }
    }

    #[test]
    fn flow_table_eviction_never_corrupts_survivors(
        pkts in packet_stream(200), cap in 1usize..16
    ) {
        let table = FlowTable::from_packets(cap, &pkts);
        prop_assert!(table.len() <= cap);
        // Conservation: every offered packet is live or was counted at
        // its flow's eviction.
        prop_assert_eq!(table.offered(), pkts.len() as u64);
        prop_assert_eq!(
            table.live_packets() + table.evicted_packets(),
            pkts.len() as u64
        );
        // Survivors never exceed the true per-flow totals (an evicted
        // flow that returns restarts; it never double-counts).
        let reference = FlowTable::from_packets(usize::MAX, &pkts);
        let truth: std::collections::BTreeMap<_, _> =
            reference.flows().map(|(k, r)| (*k, *r)).collect();
        for (key, rec) in table.flows() {
            let full = truth.get(key).expect("survivor exists in full grouping");
            prop_assert!(rec.packets >= 1 && rec.packets <= full.packets);
            prop_assert!(rec.bytes <= full.bytes);
            prop_assert!(rec.first_ts >= full.first_ts && rec.last_ts <= full.last_ts);
            prop_assert!(rec.first_ts <= rec.last_ts);
        }
    }

    #[test]
    fn flow_table_batch_equals_stream(pkts in packet_stream(200), cap in 1usize..16) {
        let batch = FlowTable::from_packets(cap, &pkts);
        let mut streamed = FlowTable::with_capacity(cap);
        for p in &pkts {
            streamed.offer(p);
        }
        let snapshot = |t: &FlowTable| t.flows().map(|(k, r)| (*k, *r)).collect::<Vec<_>>();
        prop_assert_eq!(snapshot(&batch), snapshot(&streamed));
        prop_assert_eq!(batch.offered(), streamed.offered());
        prop_assert_eq!(batch.evicted_flows(), streamed.evicted_flows());
        prop_assert_eq!(batch.evicted_packets(), streamed.evicted_packets());
    }

    #[test]
    fn flow_table_merge_of_halves_equals_one_pass(
        pkts in packet_stream(200), split_raw in 0usize..200
    ) {
        let split = split_raw % (pkts.len() + 1);
        let mut merged = FlowTable::unbounded();
        merged.merge(&FlowTable::from_packets(usize::MAX, &pkts[..split]));
        merged.merge(&FlowTable::from_packets(usize::MAX, &pkts[split..]));
        let whole = FlowTable::from_packets(usize::MAX, &pkts);
        let snapshot = |t: &FlowTable| t.flows().map(|(k, r)| (*k, *r)).collect::<Vec<_>>();
        prop_assert_eq!(snapshot(&merged), snapshot(&whole));
        prop_assert_eq!(merged.offered(), whole.offered());
        prop_assert_eq!(merged.live_packets(), whole.live_packets());
    }

    #[test]
    fn samplers_never_select_more_than_offered(
        pkts in packet_stream(200), k in 1usize..30
    ) {
        for spec in MethodSpec::paper_five(k, 500.0) {
            let mut s = spec.build(pkts.len(), pkts[0].timestamp, 0, 7);
            let sel = select_indices(s.as_mut(), &pkts);
            prop_assert!(sel.len() <= pkts.len(), "{spec}");
            // Indices are valid and strictly increasing.
            prop_assert!(sel.windows(2).all(|w| w[0] < w[1]), "{spec}");
            if let Some(&last) = sel.last() {
                prop_assert!(last < pkts.len(), "{spec}");
            }
        }
    }
}
