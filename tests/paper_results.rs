//! Integration tests: the paper's headline findings hold end-to-end on
//! the synthetic population.
//!
//! 1. φ degrades monotonically (and its replication spread grows) as the
//!    sampling fraction falls (Figures 6–8).
//! 2. Timer-driven methods are worse than packet-driven ones, severely
//!    so for interarrival times (Figures 8–9, §7.2).
//! 3. Within a trigger class the methods are nearly indistinguishable.
//! 4. The operational 1-in-50 systematic method passes the χ² test at
//!    0.05 for all but a few start offsets (§6).
//! 5. Longer measurement intervals improve φ at every fraction (§7.3,
//!    Figures 10–11).

use netsample::netsynth;
use netsample::sampling::experiment::{interval_sweep, Experiment, MethodFamily};
use netsample::sampling::{MethodSpec, Target};
use nettrace::{Micros, Trace};
use std::sync::OnceLock;

/// A 900-second study window (enough packets for stable scores, fast
/// enough for CI).
fn study() -> &'static Trace {
    static TRACE: OnceLock<Trace> = OnceLock::new();
    TRACE.get_or_init(|| netsynth::generate(&netsynth::TraceProfile::short(900), 1993))
}

fn mean_phi(target: Target, family: MethodFamily, k: usize) -> f64 {
    let exp = Experiment::new(study().packets(), target);
    exp.run_family(family, k, 5, 42)
        .mean_phi()
        .expect("nonempty samples")
}

#[test]
fn phi_degrades_with_granularity_all_methods() {
    for family in MethodFamily::paper_five() {
        let fine = mean_phi(Target::PacketSize, family, 8);
        let mid = mean_phi(Target::PacketSize, family, 256);
        let coarse = mean_phi(Target::PacketSize, family, 8192);
        assert!(
            fine < coarse && mid < coarse * 1.5,
            "{}: fine {fine} mid {mid} coarse {coarse}",
            family.name()
        );
    }
}

#[test]
fn replication_spread_grows_with_granularity() {
    let exp = Experiment::new(study().packets(), Target::PacketSize);
    let fine = exp
        .run_family(MethodFamily::StratifiedRandom, 16, 20, 1)
        .phi_boxplot()
        .unwrap();
    let coarse = exp
        .run_family(MethodFamily::StratifiedRandom, 4096, 20, 1)
        .phi_boxplot()
        .unwrap();
    assert!(
        coarse.iqr() > 2.0 * fine.iqr(),
        "IQR fine {} coarse {}",
        fine.iqr(),
        coarse.iqr()
    );
}

#[test]
fn timer_methods_lose_badly_on_interarrival() {
    // The paper's strongest result (Figure 9): at every fraction the
    // timer methods' phi is several times the packet methods'.
    for k in [16usize, 256, 4096] {
        let packet = mean_phi(Target::Interarrival, MethodFamily::Systematic, k).max(mean_phi(
            Target::Interarrival,
            MethodFamily::SimpleRandom,
            k,
        ));
        let timer = mean_phi(Target::Interarrival, MethodFamily::SystematicTimer, k).min(mean_phi(
            Target::Interarrival,
            MethodFamily::StratifiedTimer,
            k,
        ));
        assert!(
            timer > 3.0 * packet,
            "k={k}: timer {timer} vs packet {packet}"
        );
    }
}

#[test]
fn timer_bias_skews_interarrivals_upward() {
    // §7.2: timer sampling "tends to skew the true interarrival
    // distribution toward the larger values" — the sampled top bin
    // (>=3600us) is over-represented.
    let packets = study().packets();
    let target = Target::Interarrival;
    let pop = target.population_histogram(packets);
    let exp = Experiment::new(packets, target);
    let spec = MethodFamily::SystematicTimer.at_granularity(64, exp.mean_pps());
    let mut sampler = spec.build(packets.len(), packets[0].timestamp, 0, 5);
    let selected = netsample::sampling::select_indices(sampler.as_mut(), packets);
    let sam = target.sample_histogram(packets, &selected);
    let pop_top = *pop.proportions().last().unwrap();
    let sam_top = *sam.proportions().last().unwrap();
    assert!(
        sam_top > 1.5 * pop_top,
        "top-bin proportion: sample {sam_top} vs population {pop_top}"
    );
}

#[test]
fn within_class_differences_are_small() {
    // Packet-driven methods tie with each other (within noise bands).
    for k in [64usize, 1024] {
        let phis: Vec<f64> = [
            MethodFamily::Systematic,
            MethodFamily::StratifiedRandom,
            MethodFamily::SimpleRandom,
        ]
        .iter()
        .map(|f| mean_phi(Target::PacketSize, *f, k))
        .collect();
        let max = phis.iter().cloned().fold(f64::MIN, f64::max);
        let min = phis.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max < 3.0 * min + 0.005,
            "k={k}: packet-driven phis spread too far: {phis:?}"
        );
    }
}

#[test]
fn one_in_fifty_passes_chi2_like_the_backbone() {
    // §6: only ~2-3 of 50 replications reject at 0.05. Expected count
    // is 2.5; accept anything within the binomial(50, .05) 99.9% range.
    for target in [Target::PacketSize, Target::Interarrival] {
        let exp = Experiment::new(study().packets(), target);
        let result = exp.run(MethodSpec::Systematic { interval: 50 }, 50, 1993);
        assert_eq!(result.replications.len(), 50);
        let rejections = result.rejections_at(0.05);
        assert!(rejections <= 9, "{target}: {rejections} of 50 rejected");
    }
}

#[test]
fn longer_intervals_improve_phi() {
    let lengths = [
        Micros::from_secs(60),
        Micros::from_secs(240),
        Micros::from_secs(900),
    ];
    for target in [Target::PacketSize, Target::Interarrival] {
        let sweep = interval_sweep(
            study(),
            target,
            MethodFamily::Systematic,
            256,
            Micros::ZERO,
            &lengths,
            10,
            3,
        );
        let phis: Vec<f64> = sweep
            .iter()
            .map(|(_, r)| r.as_ref().unwrap().mean_phi().unwrap())
            .collect();
        assert!(
            phis[2] < phis[0],
            "{target}: phi did not improve with interval: {phis:?}"
        );
    }
}

#[test]
fn geometric_extension_matches_random_class() {
    // The sFlow-style geometric sampler behaves like simple random
    // sampling (both are unordered-uniform in expectation).
    let geo = mean_phi(Target::PacketSize, MethodFamily::GeometricSkip, 256);
    let rnd = mean_phi(Target::PacketSize, MethodFamily::SimpleRandom, 256);
    assert!((geo - rnd).abs() < 0.02, "geometric {geo} vs random {rnd}");
}

#[test]
fn experiments_are_reproducible() {
    let exp = Experiment::new(study().packets(), Target::PacketSize);
    let a = exp.run(MethodSpec::StratifiedRandom { bucket: 128 }, 5, 99);
    let b = exp.run(MethodSpec::StratifiedRandom { bucket: 128 }, 5, 99);
    assert_eq!(a, b);
}
