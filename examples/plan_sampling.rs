//! Designing a sampling deployment: pick the coarsest sampling fraction
//! that still meets an accuracy goal, using the paper's two tools —
//! Cochran's sample-size formula (§5.1) for mean estimates, and a φ
//! sweep (§7) for distribution estimates.
//!
//! ```sh
//! cargo run --release --example plan_sampling
//! ```

use netsample::netsynth;
use netsample::sampling::experiment::{Experiment, MethodFamily};
use netsample::sampling::samplesize::{implied_fraction, required_sample_size, SampleSizeSpec};
use netsample::sampling::Target;
use nettrace::Micros;
use statkit::Moments;

fn main() {
    let minutes = 15u32;
    let trace = netsynth::generate(&netsynth::TraceProfile::short(minutes * 60), 5);
    let n = trace.len() as u64;
    println!("measurement interval: {minutes} min, {n} packets\n");

    // --- Goal 1: mean packet size within ±2% at 95% confidence. ---
    let m = Moments::from_values(trace.iter().map(|p| f64::from(p.size)));
    let need = required_sample_size(&SampleSizeSpec {
        mean: m.mean(),
        std_dev: m.std_dev(),
        accuracy_pct: 2.0,
        confidence: 0.95,
    });
    let f = implied_fraction(need, n);
    let k_mean = (1.0 / f).floor() as u64;
    println!(
        "mean packet size to ±2%/95%: need n = {need} -> fraction {:.3}% -> sample 1-in-{k_mean}",
        f * 100.0
    );

    // --- Goal 2: packet-size *distribution* with phi <= 0.02. ---
    let exp = Experiment::over_window(
        &trace,
        Micros::ZERO,
        Micros::from_secs(u64::from(minutes) * 60),
        Target::PacketSize,
    );
    println!("\nphi sweep (systematic, 5 replications): pick the largest k with phi <= 0.02");
    let mut chosen = 1usize;
    for k in [8usize, 32, 128, 512, 2048, 8192] {
        let phi = exp
            .run_family(MethodFamily::Systematic, k, 5, 9)
            .mean_phi()
            .expect("nonempty");
        let ok = phi <= 0.02;
        println!(
            "  1-in-{k:<5} phi = {phi:.5} {}",
            if ok { "ok" } else { "too coarse" }
        );
        if ok {
            chosen = k;
        }
    }
    println!(
        "\ndeploy: 1-in-{} for distribution fidelity (the mean-only goal would allow 1-in-{}).\n\
         The distribution goal is the binding constraint — the paper's point that mean-based\n\
         sample sizing understates what characterization needs.",
        chosen, k_mean
    );
}
