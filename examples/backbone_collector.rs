//! The NSFNET statistics pipeline end to end (paper §2): a two-node
//! backbone with capacity-limited categorization processors, polled by
//! the central agent every (scaled-down) collection cycle — first
//! without sampling under overload, then with the 1-in-50 fix.
//!
//! ```sh
//! cargo run --release --example backbone_collector
//! ```

use netsample::netstat::{Backbone, CollectorNode, ObjectSet};
use netsample::netsynth;
use nettrace::Micros;

fn run(label: &str, sampling: Option<u64>, trace: &nettrace::Trace) {
    // Each node's categorization processor can examine 150 headers/s —
    // well under the ~210 pps each node receives from the split trace.
    let mut nodes = vec![
        CollectorNode::new(ObjectSet::T3, 150),
        CollectorNode::new(ObjectSet::T3, 150),
    ];
    if let Some(k) = sampling {
        for n in &mut nodes {
            n.deploy_sampling(k);
        }
    }
    // Poll every 2 minutes (the real NOC used 15; scaled to the trace).
    let mut backbone = Backbone::new(nodes, Micros::from_secs(120));

    // Route by destination network parity — a stand-in for backbone
    // routing.
    let cycles = backbone.run_trace(trace, |p| usize::from(p.dst_net % 2 == 0));

    println!("{label}");
    println!(
        "  {:>6} {:>12} {:>12} {:>8}",
        "cycle", "SNMP pkts", "estimate", "gap%"
    );
    for (i, c) in cycles.iter().enumerate() {
        let snmp = c.snmp_packets();
        let est = c.estimated_packets();
        let gap = if snmp > 0 {
            (snmp as f64 - est as f64) / snmp as f64 * 100.0
        } else {
            0.0
        };
        println!("  {:>6} {:>12} {:>12} {:>7.1}%", i + 1, snmp, est, gap);
    }
}

fn main() {
    let trace = netsynth::generate(&netsynth::TraceProfile::short(600), 2024);
    println!(
        "driving {} packets through a 2-node backbone (150 pps categorization capacity per node)\n",
        trace.len()
    );
    run(
        "unsampled categorization (processor overloaded):",
        None,
        &trace,
    );
    println!();
    run(
        "with 1-in-50 systematic sampling (the Sept-1991 fix):",
        Some(50),
        &trace,
    );
    println!(
        "\nSNMP never loses packets; the categorization estimate only matches it once\n\
         sampling reduces the header-examination load below processor capacity."
    );
}
