//! Trace files: export a synthetic population to a standard libpcap
//! file, read it back, and run the sampling analysis on the file — the
//! workflow a user with a *real* capture follows (the original study
//! worked from a 650 MB trace file).
//!
//! ```sh
//! cargo run --release --example pcap_workflow
//! ```

use netsample::netsynth;
use netsample::sampling::experiment::{Experiment, MethodFamily};
use netsample::sampling::Target;
use nettrace::pcap::{read_pcap, write_pcap};
use nettrace::Micros;
use std::fs::File;
use std::io::{BufReader, BufWriter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::temp_dir().join("netsample_demo.pcap");

    // 1. Synthesize one minute and write it as pcap (LINKTYPE_RAW with
    //    synthetic IPv4 headers, readable by tcpdump/Wireshark).
    let trace = netsynth::generate(&netsynth::TraceProfile::short(60), 77);
    write_pcap(BufWriter::new(File::create(&path)?), &trace)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "wrote {} packets to {} ({:.1} MB)",
        trace.len(),
        path.display(),
        bytes as f64 / 1e6
    );

    // 2. Read it back; every analysis-relevant field survives.
    let reread = read_pcap(BufReader::new(File::open(&path)?))?;
    assert_eq!(reread.len(), trace.len());
    assert_eq!(reread.total_bytes(), trace.total_bytes());
    println!(
        "re-read {} packets, {} bytes — intact",
        reread.len(),
        reread.total_bytes()
    );

    // 3. Run the standard analysis on the file-sourced trace.
    let exp = Experiment::over_window(
        &reread,
        Micros::ZERO,
        Micros::from_secs(60),
        Target::Interarrival,
    );
    println!("\ninterarrival-target phi from the pcap-sourced population:");
    for family in [
        MethodFamily::Systematic,
        MethodFamily::SimpleRandom,
        MethodFamily::SystematicTimer,
    ] {
        let r = exp.run_family(family, 50, 5, 3);
        println!(
            "  {:<12} phi = {:.5}",
            family.name(),
            r.mean_phi().expect("nonempty")
        );
    }

    std::fs::remove_file(&path)?;
    Ok(())
}
