//! Quickstart: sample a synthetic hour of WAN traffic and score the
//! sample against its parent population with the paper's φ metric.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use netsample::netsynth;
use netsample::sampling::experiment::{Experiment, MethodFamily};
use netsample::sampling::Target;
use nettrace::Micros;

fn main() {
    // 1. A parent population: five synthetic minutes of the calibrated
    //    SDSC/E-NSS March 1993 workload (deterministic under the seed).
    let profile = netsynth::TraceProfile::short(300);
    let trace = netsynth::generate(&profile, 42);
    println!(
        "population: {} packets over {:.0} s ({:.0} pps, {:.1} MB)",
        trace.len(),
        trace.duration().as_secs_f64(),
        trace.stats().mean_pps(),
        trace.total_bytes() as f64 / 1e6,
    );

    // 2. Fix a characterization target — here the packet-size
    //    distribution, with the paper's protocol-motivated bins.
    let exp = Experiment::over_window(
        &trace,
        Micros::ZERO,
        Micros::from_secs(300),
        Target::PacketSize,
    );

    // 3. Run the NSFNET's operational method (1-in-50 systematic) and
    //    its alternatives, five replications each, and compare φ scores.
    println!("\nmean phi at 1-in-50 (0 = perfect sample), 5 replications:");
    for family in MethodFamily::paper_five() {
        let result = exp.run_family(family, 50, 5, 7);
        println!(
            "  {:<12} phi = {:.5}   (mean sample size {:.0})",
            family.name(),
            result.mean_phi().expect("samples nonempty"),
            result.mean_sample_size().unwrap(),
        );
    }

    // 4. The paper's headline: packet-driven methods tie; timer-driven
    //    methods lose — dramatically so for the interarrival-time
    //    target, because a timer preferentially selects the packet after
    //    a long quiet gap. Verify it programmatically.
    let ia = Experiment::over_window(
        &trace,
        Micros::ZERO,
        Micros::from_secs(300),
        Target::Interarrival,
    );
    let packet_phi: f64 = MethodFamily::paper_five()[..3]
        .iter()
        .map(|f| ia.run_family(*f, 50, 5, 7).mean_phi().unwrap())
        .sum::<f64>()
        / 3.0;
    let timer_phi: f64 = MethodFamily::paper_five()[3..]
        .iter()
        .map(|f| ia.run_family(*f, 50, 5, 7).mean_phi().unwrap())
        .sum::<f64>()
        / 2.0;
    println!(
        "\ninterarrival target: packet-driven mean phi {packet_phi:.5} vs timer-driven {timer_phi:.5}\n -> {}",
        if timer_phi > packet_phi {
            "timer-driven methods are far worse, as the paper found (its Figure 9)"
        } else {
            "(unexpected on this run)"
        }
    );
}
