//! The paper's billing scenario (§5.2): a service provider charges
//! customers from *sampled* traffic counts and wants a sampling design
//! that bounds the ℓ₁ (cost) error — overcharges annoy customers,
//! undercounts lose revenue.
//!
//! ```sh
//! cargo run --release --example provider_billing
//! ```

use netsample::netsynth;
use netsample::sampling::estimate::estimated_total;
use netsample::sampling::{select_indices, MethodSpec};
use nettrace::Micros;
use std::collections::HashMap;

fn main() {
    // Ten minutes of traffic; customers are source network numbers.
    let trace = netsynth::generate(&netsynth::TraceProfile::short(600), 1993);
    let packets = trace.packets();

    // Ground truth: per-customer packet counts (the provider can't
    // normally afford this — that's the point of sampling).
    let mut truth: HashMap<u16, u64> = HashMap::new();
    for p in packets {
        *truth.entry(p.src_net).or_default() += 1;
    }

    for k in [10usize, 50, 500] {
        let fraction = 1.0 / k as f64;
        let mut sampler =
            MethodSpec::Systematic { interval: k }.build(packets.len(), Micros::ZERO, 0, 7);
        let selected = select_indices(sampler.as_mut(), packets);

        let mut sampled: HashMap<u16, u64> = HashMap::new();
        for &i in &selected {
            *sampled.entry(packets[i].src_net).or_default() += 1;
        }

        // The provider bills each customer the scaled-up estimate.
        let mut overcharge = 0.0; // packets billed but never sent
        let mut lost = 0.0; // packets sent but not billed
        let mut l1 = 0.0;
        for (&net, &true_pkts) in &truth {
            let est = estimated_total(sampled.get(&net).copied().unwrap_or(0) as f64, fraction);
            let diff = est - true_pkts as f64;
            l1 += diff.abs();
            if diff > 0.0 {
                overcharge += diff;
            } else {
                lost -= diff;
            }
        }
        let total: u64 = truth.values().sum();
        println!(
            "1-in-{k:<4} cost (l1) = {l1:>9.0} packets ({:.2}% of traffic)  \
             overcharged {overcharge:>8.0}  revenue lost {lost:>8.0}  relative cost = {:.1}",
            l1 / total as f64 * 100.0,
            l1 * fraction,
        );
    }

    println!(
        "\nThe l1 error grows as the fraction falls — the provider picks the coarsest\n\
         sampling whose cost stays below the reimbursement budget (paper §5.2)."
    );
}
