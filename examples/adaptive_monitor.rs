//! A self-tuning monitor: adaptive sampling under changing load.
//!
//! The NSFNET fixed its 1991 overload with a hand-picked 1-in-50. This
//! example runs the AIMD adaptive sampler against a day-like load swing
//! (quiet night → busy afternoon → night again) and prints, per epoch,
//! the interval the controller chose and the resulting selection rate —
//! holding the categorization budget without operator intervention.
//!
//! ```sh
//! cargo run --release --example adaptive_monitor
//! ```

use netsample::netsynth::{self, TraceProfile};
use netsample::sampling::adaptive::{AdaptiveConfig, AdaptiveSampler};
use netsample::sampling::Sampler;
use nettrace::merge::shift;
use nettrace::Micros;

fn main() {
    // Three 2-minute epochs of different intensity, stitched together.
    let epochs = [
        ("night", 80.0),
        ("afternoon peak", 2500.0),
        ("evening", 400.0),
    ];
    let mut parts = Vec::new();
    for (i, (_, pps)) in epochs.iter().enumerate() {
        let mut p = TraceProfile::short(120);
        p.mean_pps = *pps;
        let t = netsynth::generate(&p, 7 + i as u64);
        parts.push(shift(&t, Micros::from_secs(120 * i as u64)));
    }
    let refs: Vec<&nettrace::Trace> = parts.iter().collect();
    let day = nettrace::merge::merge(&refs);
    println!(
        "driving {} packets through an adaptive sampler (budget 25 selections/s)\n",
        day.len()
    );

    let mut sampler = AdaptiveSampler::new(
        50,
        AdaptiveConfig {
            budget_per_period: 25,
            ..AdaptiveConfig::default()
        },
    );

    let mut per_epoch = vec![(0u64, 0u64); epochs.len()]; // (offered, selected)
    let mut interval_at_end = vec![0usize; epochs.len()];
    for p in day.iter() {
        let epoch = (p.timestamp.whole_secs() / 120).min(2) as usize;
        per_epoch[epoch].0 += 1;
        if sampler.offer(p) {
            per_epoch[epoch].1 += 1;
        }
        interval_at_end[epoch] = sampler.current_interval();
    }

    println!(
        "{:<16} {:>10} {:>10} {:>12} {:>14}",
        "epoch", "offered", "selected", "sel/s", "interval@end"
    );
    for ((name, _), ((offered, selected), interval)) in
        epochs.iter().zip(per_epoch.iter().zip(&interval_at_end))
    {
        println!(
            "{:<16} {:>10} {:>10} {:>12.1} {:>14}",
            name,
            offered,
            selected,
            *selected as f64 / 120.0,
            interval
        );
    }
    println!(
        "\nacross a {}x load swing the controller made {} adjustments and kept the\n\
         selection rate near budget — no hand-retuned 1-in-k required.",
        (2500.0f64 / 80.0).round(),
        sampler.adjustments()
    );
}
