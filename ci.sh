#!/usr/bin/env bash
# Offline CI gate: format, lint, build, test, then smoke-test the CLI's
# observability path end to end. Everything runs with --offline — the
# workspace has no registry dependencies by design.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (deny warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --offline --release --workspace

echo "== cargo test"
cargo test --offline --workspace -q

echo "== cargo test (obskit noop feature)"
cargo test --offline -p obskit --features noop -q

echo "== smoke: synthesize + score with --metrics"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
bin=target/release/netsample
"$bin" synth "$tmpdir/pop.pcap" --seconds 10 --seed 7 --metrics 2> "$tmpdir/synth.metrics" | grep -q "wrote"
grep -q "netsynth_packets_generated_total" "$tmpdir/synth.metrics"
"$bin" score "$tmpdir/pop.pcap" --interval 20 --replications 3 --metrics \
    --trace "$tmpdir/events.jsonl" 2> "$tmpdir/score.metrics" | grep -q "mean phi"
grep -q "nettrace_packets_read_total" "$tmpdir/score.metrics"
grep -q "sampling_packets_selected_total" "$tmpdir/score.metrics"
grep -q '"kind":"span"' "$tmpdir/events.jsonl"

echo "== par: serial/parallel equivalence + pool determinism smoke"
# The paper's five methods must score bit-identically at any pool
# width; the equivalence suite pins jobs 1 vs 4 (and 8) against each
# other with exact f64 bit comparisons.
cargo test --offline -q -p sampling --test par_equivalence
# Determinism smoke: the parkit suite run twice under heavy test-thread
# interleaving must print the same stdout (panic-hook chatter on stderr
# is timing-dependent by nature; wall-clock lines are normalized away).
for pass in 1 2; do
    cargo test --offline -q -p parkit -- --test-threads=8 \
        2>/dev/null | sed -E 's/finished in [0-9.]+s/finished in Xs/' \
        > "$tmpdir/par.$pass.out"
done
diff "$tmpdir/par.1.out" "$tmpdir/par.2.out" || {
    echo "parkit test output is nondeterministic across runs" >&2
    exit 1
}

echo "== fuzz: seeded fault-injection campaign (deterministic, offline)"
# Fixed-seed mutation campaign over pcap/pcapng parsing plus
# state-machine fuzzing of the samplers and the disparity metric. Any
# finding (panic, incorrect accept, salvage inconsistency) exits 1.
# Running it twice and diffing byte-for-byte pins determinism: the
# whole campaign is a pure function of the seed.
for pass in 1 2; do
    "$bin" fuzz --seed 1993 --mutations 10000 --cases 1000 \
        > "$tmpdir/fuzz.$pass.out"
done
diff "$tmpdir/fuzz.1.out" "$tmpdir/fuzz.2.out" || {
    echo "fuzz campaign is nondeterministic across runs" >&2
    exit 1
}
grep -q "findings: 0" "$tmpdir/fuzz.1.out"
# The lossy ingest path salvages a mid-record truncation the strict
# reader refuses.
head -c "$(( $(stat -c %s "$tmpdir/pop.pcap") - 7 ))" "$tmpdir/pop.pcap" > "$tmpdir/cut.pcap"
if "$bin" analyze "$tmpdir/cut.pcap" > /dev/null 2>&1; then
    echo "strict analyze accepted a truncated capture" >&2
    exit 1
fi
"$bin" analyze "$tmpdir/cut.pcap" --lossy | grep -q "lossy ingest (pcap)"

echo "== stream: one-pass windowed characterization (stdin, deterministic)"
# The streaming engine is a pure function of the capture bytes: piping
# the same capture through stdin twice must print byte-identical
# output, and reading the same capture as a file must match the pipe.
for pass in 1 2; do
    "$bin" stream - --window 2000 --interval 50 < "$tmpdir/pop.pcap" \
        > "$tmpdir/stream.$pass.out"
done
diff "$tmpdir/stream.1.out" "$tmpdir/stream.2.out" || {
    echo "stream output is nondeterministic across runs" >&2
    exit 1
}
"$bin" stream "$tmpdir/pop.pcap" --window 2000 --interval 50 \
    > "$tmpdir/stream.file.out"
diff "$tmpdir/stream.1.out" "$tmpdir/stream.file.out" || {
    echo "stream differs between stdin and file ingestion" >&2
    exit 1
}
grep -q "mean phi=" "$tmpdir/stream.1.out"
# A capture that ends mid-record is a data error (sysexits 65) carrying
# the byte offset of the broken record, like the salvage reader reports.
if "$bin" stream "$tmpdir/cut.pcap" --window 1000 > /dev/null 2> "$tmpdir/stream.err"; then
    echo "stream accepted a truncated capture" >&2
    exit 1
else
    code=$?
    if [ "$code" -ne 65 ]; then
        echo "stream exited $code on a truncated capture, want 65" >&2
        exit 1
    fi
fi
grep -q "at byte" "$tmpdir/stream.err"

echo "== serve: live telemetry plane (mid-run scrapes + soak RSS bound)"
# Run a rate-paced soak with the scrape server on an ephemeral port.
# While it streams, scrape /metrics twice over plain TCP (bash /dev/tcp)
# and require a valid exposition whose ingest counter strictly
# increases between scrapes — proof the registry is being read live,
# not from an end-of-run snapshot. Then the soak itself must pass its
# RSS budget (exit 1 otherwise).
"$bin" --serve 127.0.0.1:0 stream --soak 40 --window 2000 --pace-pps 20000 \
    --interval 50 > "$tmpdir/soak.out" 2> "$tmpdir/soak.err" &
soak_pid=$!
port=""
for _ in $(seq 1 100); do
    port="$(sed -n 's/^netsample: serving on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$tmpdir/soak.err" | head -n1)"
    [ -n "$port" ] && break
    sleep 0.1
done
if [ -z "$port" ]; then
    echo "serve address never appeared on stderr" >&2
    kill "$soak_pid" 2>/dev/null || true
    exit 1
fi
scrape() {
    exec 3<>"/dev/tcp/127.0.0.1/$port"
    printf 'GET %s HTTP/1.0\r\n\r\n' "$1" >&3
    cat <&3
    exec 3<&- 3>&-
}
# The ingest counters register when the pipeline spins up, a moment
# after the server binds — poll until the first scrape sees them.
for _ in $(seq 1 100); do
    scrape /metrics > "$tmpdir/scrape.1" || true
    grep -q "^stream_packets_ingested_total " "$tmpdir/scrape.1" && break
    sleep 0.1
done
scrape /healthz > "$tmpdir/healthz.out"
sleep 0.7
scrape /metrics > "$tmpdir/scrape.2"
grep -q "# TYPE stream_packets_ingested_total counter" "$tmpdir/scrape.1"
grep -q "# TYPE proc_rss_kb gauge" "$tmpdir/scrape.1"
grep -q '"status":"ok"' "$tmpdir/healthz.out"
ing1="$(sed -n 's/^stream_packets_ingested_total \([0-9]*\)$/\1/p' "$tmpdir/scrape.1")"
ing2="$(sed -n 's/^stream_packets_ingested_total \([0-9]*\)$/\1/p' "$tmpdir/scrape.2")"
if [ -z "$ing1" ] || [ -z "$ing2" ] || [ "$ing2" -le "$ing1" ]; then
    echo "ingest counter did not increase between scrapes ('$ing1' -> '$ing2')" >&2
    kill "$soak_pid" 2>/dev/null || true
    exit 1
fi
wait "$soak_pid" || {
    echo "soak run failed (RSS budget or stream error):" >&2
    cat "$tmpdir/soak.out" "$tmpdir/soak.err" >&2
    exit 1
}
grep -Eq "soak: windows=40 .*ok|rss unavailable" "$tmpdir/soak.out"

echo "== watch: alert rules + scrape-driven gate (both directions)"
# Load two rules into a served soak: 'quiet' can never fire, 'tripwire'
# fires on the first telemetry tick. `watch --fail-on` must gate both
# ways against the same live server: exit 0 on the quiet rule, exit 1
# (and only 1) on the tripped one — that asymmetry is what CI pipelines
# hang an alerting regression gate on.
cat > "$tmpdir/watch.rules" <<'RULES'
# ci.sh watch-stage rules
rule quiet    value(telemetry_samples_total) > 1000000000
rule tripwire value(telemetry_samples_total) >= 1 for 1
RULES
"$bin" --serve 127.0.0.1:0 --rules "$tmpdir/watch.rules" \
    --telemetry-interval-ms 100 stream --soak 80 --window 2000 \
    --pace-pps 20000 --interval 50 --adaptive-shed tripwire \
    > "$tmpdir/wsoak.out" 2> "$tmpdir/wsoak.err" &
wsoak_pid=$!
wport=""
for _ in $(seq 1 100); do
    wport="$(sed -n 's/^netsample: serving on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$tmpdir/wsoak.err" | head -n1)"
    [ -n "$wport" ] && break
    sleep 0.1
done
if [ -z "$wport" ]; then
    echo "watch-stage serve address never appeared on stderr" >&2
    kill "$wsoak_pid" 2>/dev/null || true
    exit 1
fi
# While the server is still up: the monitoring path's self-fidelity
# check must be reporting φ for the systematic strides k=2,5,10 over
# the RSS and channel-depth series, and /series must answer JSON.
scrape_w() {
    exec 3<>"/dev/tcp/127.0.0.1/$wport"
    printf 'GET %s HTTP/1.0\r\n\r\n' "$1" >&3
    cat <&3
    exec 3<&- 3>&-
}
# The channel-depth fidelity gauge is the last to appear (the pipeline
# must publish its depth gauges before the store can snapshot them), so
# it is the readiness condition for the whole set.
for _ in $(seq 1 100); do
    scrape_w /metrics > "$tmpdir/watch.metrics" 2>/dev/null || true
    grep -Fq 'series="stream_channel_depth{stage=\"transform\"}",k="10"' \
        "$tmpdir/watch.metrics" && break
    sleep 0.1
done
for k in 2 5 10; do
    for pat in \
        "series_fidelity_phi_x1000{series=\"proc_rss_kb\",k=\"$k\"}" \
        'series="stream_channel_depth{stage=\"transform\"}",k="'"$k"'"'; do
        grep -Fq "$pat" "$tmpdir/watch.metrics" || {
            echo "fidelity gauge missing from /metrics: $pat" >&2
            kill "$wsoak_pid" 2>/dev/null || true
            exit 1
        }
    done
done
scrape_w '/series?name=proc_rss_kb&step=5' > "$tmpdir/watch.series"
grep -q '"key":"proc_rss_kb"' "$tmpdir/watch.series" || {
    echo "/series did not return the proc_rss_kb key" >&2
    kill "$wsoak_pid" 2>/dev/null || true
    exit 1
}
# Clean direction: the quiet rule exists and never fires -> exit 0,
# with sparklines and alert state on stdout.
"$bin" watch "127.0.0.1:$wport" --for 5 --interval-ms 150 --fail-on quiet \
    > "$tmpdir/watch.ok.out" || {
    echo "clean watch direction failed (want exit 0):" >&2
    cat "$tmpdir/watch.ok.out" >&2
    kill "$wsoak_pid" 2>/dev/null || true
    exit 1
}
grep -q "alert quiet" "$tmpdir/watch.ok.out" || {
    echo "clean watch never printed the quiet alert line" >&2
    kill "$wsoak_pid" 2>/dev/null || true
    exit 1
}
grep -q "watch: rule 'quiet' ok" "$tmpdir/watch.ok.out" || {
    echo "clean watch missing its ok summary" >&2
    kill "$wsoak_pid" 2>/dev/null || true
    exit 1
}
# Tripped direction: the tripwire rule fires -> exit 1, not 0 and not
# any other failure class.
if "$bin" watch "127.0.0.1:$wport" --for 5 --interval-ms 150 --fail-on tripwire \
    > "$tmpdir/watch.trip.out" 2> "$tmpdir/watch.trip.err"; then
    echo "watch exited 0 while its --fail-on rule was firing" >&2
    kill "$wsoak_pid" 2>/dev/null || true
    exit 1
else
    code=$?
    if [ "$code" -ne 1 ]; then
        echo "watch exited $code on a firing rule, want 1" >&2
        kill "$wsoak_pid" 2>/dev/null || true
        exit 1
    fi
fi
grep -q "fired during the watch" "$tmpdir/watch.trip.err" || {
    echo "tripped watch exit 1 but missing its diagnostic" >&2
    cat "$tmpdir/watch.trip.err" >&2
    kill "$wsoak_pid" 2>/dev/null || true
    exit 1
}
# A typo'd rule name must be a data error (65), never a silent pass.
if "$bin" watch "127.0.0.1:$wport" --for 1 --fail-on no_such_rule \
    > /dev/null 2> "$tmpdir/watch.typo.err"; then
    echo "watch exited 0 for an unknown --fail-on rule" >&2
    kill "$wsoak_pid" 2>/dev/null || true
    exit 1
else
    code=$?
    if [ "$code" -ne 65 ]; then
        echo "watch exited $code for an unknown rule, want 65" >&2
        kill "$wsoak_pid" 2>/dev/null || true
        exit 1
    fi
fi
wait "$wsoak_pid" || {
    echo "watch-stage soak failed:" >&2
    cat "$tmpdir/wsoak.out" "$tmpdir/wsoak.err" >&2
    exit 1
}

echo "== flows: inversion smoke + determinism + calibration battery"
# Synthesize the flow-id-carrying Zipf pack the inversion subcommand is
# built for, smoke the estimator table, and pin determinism end to end:
# the JSONL replication log must be byte-identical across runs, and the
# calibration battery (tests/flow_inversion_calibration.rs) must pass
# twice in a row — inversion is a pure function of (trace bytes,
# interval, replication offset).
"$bin" synth "$tmpdir/zipf.pcap" --profile zipf --seconds 20 --seed 1993 | grep -q "wrote"
"$bin" flows "$tmpdir/zipf.pcap" --method systematic --interval 100 \
    > "$tmpdir/flows.out"
grep -q "flow inversion: 1-in-100 systematic" "$tmpdir/flows.out"
grep -qE '^ *em ' "$tmpdir/flows.out"
for pass in 1 2; do
    "$bin" flows "$tmpdir/zipf.pcap" --interval 50 \
        --jsonl "$tmpdir/flows.$pass.jsonl" > /dev/null
done
cmp "$tmpdir/flows.1.jsonl" "$tmpdir/flows.2.jsonl" || {
    echo "flows --jsonl output is nondeterministic across runs" >&2
    exit 1
}
# A 1-in-0 selection is a usage error (64); a capture that ends
# mid-record is a data error (65) — same contract as score/stream.
if "$bin" flows "$tmpdir/zipf.pcap" --interval 0 > /dev/null 2>&1; then
    echo "flows accepted --interval 0" >&2
    exit 1
else
    code=$?
    if [ "$code" -ne 64 ]; then
        echo "flows exited $code on --interval 0, want 64" >&2
        exit 1
    fi
fi
if "$bin" flows "$tmpdir/cut.pcap" > /dev/null 2>&1; then
    echo "flows accepted a truncated capture" >&2
    exit 1
else
    code=$?
    if [ "$code" -ne 65 ]; then
        echo "flows exited $code on a truncated capture, want 65" >&2
        exit 1
    fi
fi
for pass in 1 2; do
    cargo test --offline -q --test flow_inversion_calibration
done

echo "== collect: sharded collector (determinism + live shard gauges + soak)"
# The collector's contract: reports are a pure function of (seed, fleet,
# method). The same config run twice must be byte-identical, and an
# S-shard run must merge to the exact bytes of the single-shard run —
# only the summary line differs (it carries the shard count), so it is
# stripped before the cross-shard compare.
for pass in 1 2; do
    "$bin" serve --shards 4 --tenants 3 --interfaces 2 --windows 3 \
        --window-packets 4000 --flows-per-window 400 --interval 10 \
        --seed 1993 --jsonl "$tmpdir/collect.$pass.jsonl" > /dev/null
done
cmp "$tmpdir/collect.1.jsonl" "$tmpdir/collect.2.jsonl" || {
    echo "serve --jsonl output is nondeterministic across runs" >&2
    exit 1
}
"$bin" serve --shards 1 --tenants 3 --interfaces 2 --windows 3 \
    --window-packets 4000 --flows-per-window 400 --interval 10 \
    --seed 1993 --jsonl "$tmpdir/collect.single.jsonl" > /dev/null
grep -v '"summary"' "$tmpdir/collect.1.jsonl" > "$tmpdir/collect.multi.reports"
grep -v '"summary"' "$tmpdir/collect.single.jsonl" > "$tmpdir/collect.single.reports"
cmp "$tmpdir/collect.multi.reports" "$tmpdir/collect.single.reports" || {
    echo "multi-shard reports diverge from the single-shard run" >&2
    exit 1
}
# Live shard telemetry: a draining collector on an ephemeral port must
# expose the per-shard gauges mid-run, with the per-shard RSS alert
# rule installed and quiet (the soak gate below proves it can fire by
# budget, this proves a healthy run keeps it at 0).
"$bin" --serve 127.0.0.1:0 serve --shards 2 --tenants 2 --interfaces 2 \
    --windows 100000 --window-packets 5000 --flows-per-window 200 \
    --interval 10 --duration-ms 6000 --shard-rss-budget-kb 200000 \
    > "$tmpdir/collect.live.out" 2> "$tmpdir/collect.live.err" &
collect_pid=$!
port=""
for _ in $(seq 1 100); do
    port="$(sed -n 's/^netsample: serving on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$tmpdir/collect.live.err" | head -n1)"
    [ -n "$port" ] && break
    sleep 0.1
done
if [ -z "$port" ]; then
    echo "collect-stage serve address never appeared on stderr" >&2
    kill "$collect_pid" 2>/dev/null || true
    exit 1
fi
for _ in $(seq 1 100); do
    scrape /metrics > "$tmpdir/collect.scrape" || true
    grep -q '^collectd_shard_flows{shard="0"} ' "$tmpdir/collect.scrape" && break
    sleep 0.1
done
for want in \
    'collectd_shard_flows{shard="0"} ' \
    'collectd_shard_flows{shard="1"} ' \
    'collectd_shard_rss_kb{shard="0"} ' \
    'collectd_shard_evictions{shard="0"} ' \
    'collectd_routing_imbalance_x1000 ' \
    'collectd_live_flows '; do
    grep -q "^$want" "$tmpdir/collect.scrape" || {
        echo "mid-run scrape is missing $want" >&2
        kill "$collect_pid" 2>/dev/null || true
        exit 1
    }
done
grep -q '^alert_active{rule="collectd_shard_rss_0"} 0' "$tmpdir/collect.scrape" || {
    echo "per-shard RSS rule is absent or firing on a healthy run" >&2
    kill "$collect_pid" 2>/dev/null || true
    exit 1
}
wait "$collect_pid" || {
    echo "draining collector run failed:" >&2
    cat "$tmpdir/collect.live.out" "$tmpdir/collect.live.err" >&2
    exit 1
}
grep -q "(drained)" "$tmpdir/collect.live.out"
# ROADMAP soak target: ≥1M aggregate live flows across 4 shards × 8
# lanes with the modeled per-shard flow state held under budget
# (worst-case routing parks 3 of 8 lanes on one shard: 450k flows ×
# 96 B ≈ 42 MB < 50 MB). Exit 1 on a missed target or budget is the CI
# gate; the 10M reference run is documented in EXPERIMENTS.md.
"$bin" serve --shards 4 --tenants 2 --interfaces 4 --windows 2 \
    --window-packets 300000 --flows-per-window 150000 \
    --lane-flow-budget 200000 --interval 10 \
    --target-flows 1000000 --shard-rss-budget-kb 50000 \
    > "$tmpdir/collect.soak.out"
grep -q "soak: max_live_flows=1200000 target=1000000 ok" "$tmpdir/collect.soak.out"
grep -q "shard budget: max_shard_rss_kb=42188 budget_kb=50000 ok" "$tmpdir/collect.soak.out"

echo "== perf: record trajectory point + regression gate"
# Seed the trajectory with the committed baselines, then record a fresh
# fixed-seed run against them. The diff gates at 25% unless
# PERF_ALLOW_REGRESSION=1 is exported by the caller (for intentional
# trade-offs).
perfdir="$tmpdir/perf"
mkdir -p "$perfdir"
cp BENCH_*.json "$perfdir"/ 2>/dev/null || true
"$bin" perf record --dir "$perfdir" --packets 100000 --seed 1993 \
    --profile-out "$perfdir/profile.folded" > "$tmpdir/perf.out"
grep -q "BENCH_" "$tmpdir/perf.out"
grep -q "cell/systematic" "$tmpdir/perf.out"
# The columnar hot path must stay on the board: every sampler family's
# gated cells plus the stream pipeline cells, so a future refactor that
# silently drops a family from the harness fails here, not in review.
for fam in systematic stratified random sys-timer strat-timer; do
    grep -q "cell/$fam/packet-size/k50" "$tmpdir/perf.out"
    grep -q "cell/$fam/interarrival/k50" "$tmpdir/perf.out"
done
for tgt in packet-size interarrival protocol port; do
    grep -q "stream/$tgt/k50" "$tmpdir/perf.out"
done
grep -q "^perf_record;" "$perfdir/profile.folded"
"$bin" perf report --dir "$perfdir" | grep -q "experiments"

echo "CI OK"
